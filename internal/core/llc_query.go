package core

import (
	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

// Reduction-oracle queries consumed by internal/mcheck's partial-order
// reduction (see DESIGN.md §10). All three are side-effect-free reads of
// the live directory — they use Peek, never Lookup, so querying cannot
// perturb replacement state — and answer for the instant they are called;
// the model checker only evaluates them between actions, with the engine
// drained.

// LineSettled reports whether line is present with its data fully fetched
// and no blocking transaction open on it — i.e. resting in one of the
// settled states V, S, O, SO. Handling a settledLocal-classified request
// against such a line touches only that line's state and emits no memory
// traffic.
func (l *LLC) LineSettled(line memaddr.LineAddr) bool {
	if _, open := l.txns[line]; open {
		return false
	}
	e := l.array.Peek(line)
	return e != nil && !e.State.fetching
}

// ProbeTargets returns the bitset of device indices a request handled
// against this line could currently probe, revoke, or forward to: the
// line's sharers plus the owner of every owned word. Absent lines have no
// targets.
func (l *LLC) ProbeTargets(line memaddr.LineAddr) uint64 {
	e := l.array.Peek(line)
	if e == nil {
		return 0
	}
	st := &e.State
	bits := st.sharers
	st.ownedMask.ForEach(func(i int) { bits |= 1 << uint(st.owner[i]) })
	return bits
}

// AllocWaiting reports whether any line fetch is parked waiting for a
// frame. While one is, resolving a transaction on *any* line can retry the
// parked allocation and evict a victim elsewhere, so no handling is
// line-local.
func (l *LLC) AllocWaiting() bool { return len(l.allocWait) > 0 }

// QueuedRequestorBits returns the bitset of device indices that appear as
// the requestor (or sender) of a request parked inside an open
// transaction — its origin or its waiting queue. Resolving the
// transaction re-dispatches those requests, which can forward to owner
// devices whose direct responses land on device→device FIFOs; a device's
// action group is not persistent while a request of its sits parked here.
// Origins are only meaningful on txnInv/txnRvk (transactions are
// pool-recycled, so other kinds may carry a stale one).
func (l *LLC) QueuedRequestorBits() uint64 {
	var bits uint64
	add := func(id proto.NodeID) {
		if i := int(id); i >= 0 && i < 64 {
			bits |= 1 << uint(i)
		}
	}
	//spandex:maprange bit-OR accumulation is commutative; iteration order cannot change the result
	for _, t := range l.txns {
		if t.kind == txnInv || t.kind == txnRvk {
			add(t.origin.Requestor)
			add(t.origin.Src)
		}
		for i := range t.waiting {
			add(t.waiting[i].Requestor)
			add(t.waiting[i].Src)
		}
	}
	return bits
}

// DirectoryMentions reports whether the directory records device dev
// anywhere: as a sharer or a word owner of any resident line. While it
// does, handling an unrelated request can probe, invalidate, or forward to
// dev, emitting onto the LLC→dev FIFO.
func (l *LLC) DirectoryMentions(dev int) bool {
	found := false
	l.array.ForEach(func(e *cacheEntry) {
		if found {
			return
		}
		st := &e.State
		if dev < 64 && st.sharers&(1<<uint(dev)) != 0 {
			found = true
			return
		}
		st.ownedMask.ForEach(func(i int) {
			if int(st.owner[i]) == dev {
				found = true
			}
		})
	})
	return found
}
