package stats

import (
	"strings"
	"testing"

	"spandex/internal/proto"
)

func TestTrafficAccumulation(t *testing.T) {
	var tr Traffic
	tr.Add(proto.ClassReqV, 80)
	tr.Add(proto.ClassReqV, 16)
	tr.Add(proto.ClassProbe, 18)
	if tr.Bytes[proto.ClassReqV] != 96 || tr.Messages[proto.ClassReqV] != 2 {
		t.Fatalf("ReqV = %d bytes / %d msgs", tr.Bytes[proto.ClassReqV], tr.Messages[proto.ClassReqV])
	}
	if tr.TotalBytes(true) != 114 {
		t.Fatalf("total = %d", tr.TotalBytes(true))
	}
}

func TestTotalBytesExcludesMem(t *testing.T) {
	var tr Traffic
	tr.Add(proto.ClassReqV, 100)
	tr.Add(proto.ClassMem, 1000)
	if tr.TotalBytes(false) != 100 {
		t.Fatalf("excl-mem total = %d", tr.TotalBytes(false))
	}
	if tr.TotalBytes(true) != 1100 {
		t.Fatalf("incl-mem total = %d", tr.TotalBytes(true))
	}
}

func TestCounters(t *testing.T) {
	s := New()
	s.Inc("llc.miss", 3)
	s.Inc("llc.miss", 2)
	s.Inc("tu.probe", 1)
	if s.Get("llc.miss") != 5 || s.Get("tu.probe") != 1 || s.Get("absent") != 0 {
		t.Fatal("counter bookkeeping wrong")
	}
	names := s.CounterNames()
	if len(names) != 2 || names[0] != "llc.miss" || names[1] != "tu.probe" {
		t.Fatalf("names = %v (must be sorted)", names)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := New()
	a.ExecTime = 100
	a.Traffic.Add(proto.ClassReqV, 64)
	a.Inc("llc.miss", 3)
	b := New()
	b.ExecTime = 250
	b.Traffic.Add(proto.ClassReqV, 16)
	b.Traffic.Add(proto.ClassProbe, 8)
	b.Inc("llc.miss", 2)
	b.Inc("tu.nack", 1)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Traffic.Bytes[proto.ClassReqV] != 80 || m.Traffic.Messages[proto.ClassReqV] != 2 {
		t.Fatalf("merged ReqV = %d bytes / %d msgs", m.Traffic.Bytes[proto.ClassReqV], m.Traffic.Messages[proto.ClassReqV])
	}
	if m.Traffic.Bytes[proto.ClassProbe] != 8 {
		t.Fatalf("merged Probe = %d bytes", m.Traffic.Bytes[proto.ClassProbe])
	}
	if m.ExecTime != 250 {
		t.Fatalf("merged ExecTime = %d, want max 250", m.ExecTime)
	}
	if m.Counters["llc.miss"] != 5 || m.Counters["tu.nack"] != 1 {
		t.Fatalf("merged counters = %v", m.Counters)
	}
	// Merge must not mutate its operands.
	if a.Snapshot().Counters["llc.miss"] != 3 || b.Snapshot().Counters["llc.miss"] != 2 {
		t.Fatal("Merge mutated an operand")
	}
}

func TestSnapshotFingerprint(t *testing.T) {
	s := New()
	s.ExecTime = 42
	s.Traffic.Add(proto.ClassReqO, 128)
	s.Inc("llc.miss", 1)
	fp := s.Snapshot().Fingerprint()
	if fp != s.Snapshot().Fingerprint() {
		t.Fatal("fingerprint not stable")
	}
	s.Inc("llc.miss", 1)
	if fp == s.Snapshot().Fingerprint() {
		t.Fatal("fingerprint insensitive to counter change")
	}
	s2 := New()
	s2.ExecTime = 42
	s2.Traffic.Add(proto.ClassReqO, 128)
	s2.Inc("llc.miss", 1)
	if fp != s2.Snapshot().Fingerprint() {
		t.Fatal("equal measurements fingerprint differently")
	}
}

func TestCounterNamesDeterministic(t *testing.T) {
	// Same counters incremented in different orders must yield identical
	// CounterNames, Summary bytes and fingerprints — the ordering contract
	// golden files and determinism verification rely on.
	keys := []string{"tu.probe", "llc.miss", "dnl1.hit", "gpul1.wt", "llc.blocked"}
	a, b := New(), New()
	for i, k := range keys {
		a.Inc(k, uint64(i+1))
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b.Inc(keys[i], uint64(i+1))
	}
	na, nb := a.CounterNames(), b.CounterNames()
	if len(na) != len(keys) {
		t.Fatalf("len = %d", len(na))
	}
	for i := range na {
		if na[i] != nb[i] {
			t.Fatalf("order differs: %v vs %v", na, nb)
		}
		if i > 0 && na[i-1] >= na[i] {
			t.Fatalf("not strictly ascending: %v", na)
		}
	}
	if a.Summary() != b.Summary() {
		t.Fatal("Summary not deterministic across insertion orders")
	}
	if a.Snapshot().Fingerprint() != b.Snapshot().Fingerprint() {
		t.Fatal("Fingerprint not deterministic across insertion orders")
	}
}

func TestSnapshotDiff(t *testing.T) {
	s := New()
	s.ExecTime = 100
	s.Traffic.Add(proto.ClassReqV, 64)
	s.Inc("llc.miss", 3)
	s.Inc("tu.probe", 2)
	before := s.Snapshot()

	s.ExecTime = 400
	s.Traffic.Add(proto.ClassReqV, 16)
	s.Traffic.Add(proto.ClassProbe, 8)
	s.Inc("llc.miss", 4)
	s.Inc("llc.evict", 1)
	d := s.Snapshot().Diff(before)

	if d.ExecTime != 400 {
		t.Fatalf("ExecTime = %d", d.ExecTime)
	}
	if d.Traffic.Bytes[proto.ClassReqV] != 16 || d.Traffic.Messages[proto.ClassReqV] != 1 {
		t.Fatalf("ReqV delta = %d bytes / %d msgs",
			d.Traffic.Bytes[proto.ClassReqV], d.Traffic.Messages[proto.ClassReqV])
	}
	if d.Traffic.Bytes[proto.ClassProbe] != 8 {
		t.Fatalf("Probe delta = %d bytes", d.Traffic.Bytes[proto.ClassProbe])
	}
	if d.Counters["llc.miss"] != 4 || d.Counters["llc.evict"] != 1 {
		t.Fatalf("counter deltas = %v", d.Counters)
	}
	if _, ok := d.Counters["tu.probe"]; ok {
		t.Fatal("zero-delta counter not omitted")
	}
	// Diff must not mutate its operands.
	if before.Counters["llc.miss"] != 3 || s.Snapshot().Counters["llc.miss"] != 7 {
		t.Fatal("Diff mutated an operand")
	}
}

func TestSummaryRendering(t *testing.T) {
	s := New()
	s.ExecTime = 2_000_000 // 2 µs
	s.Traffic.Add(proto.ClassReqO, 4096)
	s.Inc("llc.forwards", 7)
	out := s.Summary()
	for _, frag := range []string{"exec time", "ReqO", "4096", "llc.forwards", "7"} {
		if !strings.Contains(out, frag) {
			t.Errorf("summary missing %q:\n%s", frag, out)
		}
	}
}

func TestFirstDiff(t *testing.T) {
	base := func() Snapshot {
		return Snapshot{ExecTime: 100,
			Counters: map[string]uint64{"llc.hit": 5, "tu.nack": 2, "a.first": 1}}
	}

	if d := base().FirstDiff(base()); d != "" {
		t.Fatalf("identical snapshots diff: %q", d)
	}

	a, b := base(), base()
	b.ExecTime = 200
	if d := a.FirstDiff(b); !strings.Contains(d, "exec time") {
		t.Errorf("exec-time diff reported as %q", d)
	}

	a, b = base(), base()
	b.Traffic.Add(proto.ClassReqV, 64)
	if d := a.FirstDiff(b); !strings.Contains(d, "traffic") {
		t.Errorf("traffic diff reported as %q", d)
	}

	// Two divergent counters: the lexicographically first must be named,
	// regardless of map iteration order.
	a, b = base(), base()
	b.Counters["llc.hit"] = 9
	b.Counters["tu.nack"] = 9
	for i := 0; i < 20; i++ {
		if d := a.FirstDiff(b); !strings.Contains(d, `"llc.hit"`) {
			t.Fatalf("first divergent counter reported as %q, want llc.hit", d)
		}
	}

	// A counter present on only one side still diffs (zero vs value).
	a, b = base(), base()
	b.Counters["b.extra"] = 1
	if d := a.FirstDiff(b); !strings.Contains(d, `"b.extra"`) {
		t.Errorf("one-sided counter reported as %q", d)
	}
}
