// Package stats collects the measurements the paper reports: execution
// time, network traffic broken down by request class (Figures 2 and 3),
// and supporting protocol counters (blocking cycles, Nacks, cache hits).
package stats

import (
	"fmt"
	"sort"
	"strings"

	"spandex/internal/proto"
	"spandex/internal/sim"
)

// Traffic accumulates bytes and message counts per traffic class.
type Traffic struct {
	Bytes    [proto.NumClasses]uint64
	Messages [proto.NumClasses]uint64
}

// Add records one message of class c with the given payload size.
func (t *Traffic) Add(c proto.Class, bytes int) {
	t.Bytes[c] += uint64(bytes)
	t.Messages[c]++
}

// TotalBytes returns total traffic across classes. If includeMem is false,
// DRAM traffic is excluded (the paper reports interconnect traffic between
// caches; memory traffic is broadly similar across configurations).
func (t *Traffic) TotalBytes(includeMem bool) uint64 {
	var sum uint64
	for c := proto.Class(0); c < proto.NumClasses; c++ {
		if !includeMem && c == proto.ClassMem {
			continue
		}
		sum += t.Bytes[c]
	}
	return sum
}

// Stats is the per-run measurement sink shared by every component.
type Stats struct {
	Traffic Traffic

	// ExecTime is the simulated time at which the workload finished.
	ExecTime sim.Time

	Counters map[string]uint64
}

// New returns an empty Stats.
func New() *Stats {
	return &Stats{Counters: make(map[string]uint64)}
}

// Inc adds n to a named counter (e.g. "llc.blocked", "tu.nack").
func (s *Stats) Inc(name string, n uint64) {
	s.Counters[name] += n
}

// Get returns a named counter's value.
func (s *Stats) Get(name string) uint64 { return s.Counters[name] }

// CounterNames returns all counter names in sorted order.
func (s *Stats) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Summary renders a human-readable report.
func (s *Stats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exec time: %.3f us\n", float64(s.ExecTime)/1e6)
	fmt.Fprintf(&b, "network traffic (bytes):\n")
	for c := proto.Class(0); c < proto.NumClasses; c++ {
		if s.Traffic.Bytes[c] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-8s %12d bytes %10d msgs\n",
			c, s.Traffic.Bytes[c], s.Traffic.Messages[c])
	}
	fmt.Fprintf(&b, "  %-8s %12d bytes (excl. mem)\n", "total", s.Traffic.TotalBytes(false))
	for _, k := range s.CounterNames() {
		fmt.Fprintf(&b, "  %-28s %12d\n", k, s.Counters[k])
	}
	return b.String()
}
