// Package stats collects the measurements the paper reports: execution
// time, network traffic broken down by request class (Figures 2 and 3),
// and supporting protocol counters (blocking cycles, Nacks, cache hits).
package stats

import (
	"fmt"
	"sort"
	"strings"

	"spandex/internal/proto"
	"spandex/internal/sim"
)

// Traffic accumulates bytes and message counts per traffic class.
type Traffic struct {
	Bytes    [proto.NumClasses]uint64
	Messages [proto.NumClasses]uint64
}

// Add records one message of class c with the given payload size.
func (t *Traffic) Add(c proto.Class, bytes int) {
	t.Bytes[c] += uint64(bytes)
	t.Messages[c]++
}

// Merge adds other's bytes and message counts into t.
func (t *Traffic) Merge(other Traffic) {
	for c := range t.Bytes {
		t.Bytes[c] += other.Bytes[c]
		t.Messages[c] += other.Messages[c]
	}
}

// TotalBytes returns total traffic across classes. If includeMem is false,
// DRAM traffic is excluded (the paper reports interconnect traffic between
// caches; memory traffic is broadly similar across configurations).
func (t *Traffic) TotalBytes(includeMem bool) uint64 {
	var sum uint64
	for c := proto.Class(0); c < proto.NumClasses; c++ {
		if !includeMem && c == proto.ClassMem {
			continue
		}
		sum += t.Bytes[c]
	}
	return sum
}

// Stats is the per-run measurement sink shared by every component.
type Stats struct {
	Traffic Traffic

	// ExecTime is the simulated time at which the workload finished.
	ExecTime sim.Time

	// Counters boxes each named counter so Counter can hand out a stable
	// pointer: hot paths increment through the pointer instead of paying a
	// string-map assignment per protocol event.
	Counters map[string]*uint64
}

// New returns an empty Stats.
func New() *Stats {
	return &Stats{Counters: make(map[string]*uint64)}
}

// Counter returns a stable pointer to the named counter, creating it at
// zero if needed. Components resolve their hot counters once at
// construction and increment through the pointer on the fast path.
func (s *Stats) Counter(name string) *uint64 {
	if p, ok := s.Counters[name]; ok {
		return p
	}
	p := new(uint64)
	s.Counters[name] = p
	return p
}

// Inc adds n to a named counter (e.g. "llc.blocked", "tu.nack").
func (s *Stats) Inc(name string, n uint64) {
	*s.Counter(name) += n
}

// Get returns a named counter's value.
func (s *Stats) Get(name string) uint64 {
	if p, ok := s.Counters[name]; ok {
		return *p
	}
	return 0
}

// CounterNames returns all counter names in ascending lexicographic order.
// The ordering is deterministic — independent of map iteration order and
// of the order counters were first incremented — and is load-bearing:
// Summary renders counters in this order and Snapshot.Fingerprint folds
// them in this order, so two identical runs always produce byte-identical
// summaries and equal fingerprints (see TestCounterNamesDeterministic).
func (s *Stats) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot is an immutable, mergeable copy of one run's measurements.
// Concurrent sweep cells each produce a Snapshot from their private Stats;
// snapshots merge associatively into matrix-level aggregates without any
// component ever sharing a live Stats across runs.
type Snapshot struct {
	Traffic  Traffic
	ExecTime sim.Time
	Counters map[string]uint64
}

// Snapshot copies the current measurements into an independent Snapshot.
func (s *Stats) Snapshot() Snapshot {
	c := make(map[string]uint64, len(s.Counters))
	for k, v := range s.Counters {
		c[k] = *v
	}
	return Snapshot{Traffic: s.Traffic, ExecTime: s.ExecTime, Counters: c}
}

// Merge returns the combination of two snapshots: traffic and counters
// sum, ExecTime takes the maximum (the wall of a set of parallel runs).
// Neither operand is mutated.
func (a Snapshot) Merge(b Snapshot) Snapshot {
	out := Snapshot{Traffic: a.Traffic, ExecTime: a.ExecTime,
		Counters: make(map[string]uint64, len(a.Counters)+len(b.Counters))}
	out.Traffic.Merge(b.Traffic)
	if b.ExecTime > out.ExecTime {
		out.ExecTime = b.ExecTime
	}
	for k, v := range a.Counters {
		out.Counters[k] += v
	}
	for k, v := range b.Counters {
		out.Counters[k] += v
	}
	return out
}

// Diff returns the measurements accumulated between prev and s: traffic
// and counters subtract element-wise, ExecTime is s's. Both snapshots must
// come from the same Stats with prev captured earlier — counters only ever
// increase, so the subtraction cannot underflow. Counters whose delta is
// zero are omitted, making the result a compact "what happened in this
// window" record (e.g. around one phase of a workload).
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{ExecTime: s.ExecTime,
		Counters: make(map[string]uint64, len(s.Counters))}
	for c := range s.Traffic.Bytes {
		out.Traffic.Bytes[c] = s.Traffic.Bytes[c] - prev.Traffic.Bytes[c]
		out.Traffic.Messages[c] = s.Traffic.Messages[c] - prev.Traffic.Messages[c]
	}
	for k, v := range s.Counters {
		if d := v - prev.Counters[k]; d != 0 {
			out.Counters[k] = d
		}
	}
	return out
}

// FirstDiff names the first measurement on which two snapshots disagree,
// in a fixed deterministic order — execution time, traffic classes in
// proto.Class order, then counters sorted by name — with both values, or
// "" when the snapshots are identical. Fingerprint mismatches should be
// explained with this rather than by printing the raw hashes: the named
// counter is actionable, the hashes are not.
func (s Snapshot) FirstDiff(other Snapshot) string {
	if s.ExecTime != other.ExecTime {
		return fmt.Sprintf("exec time differs: %d vs %d ticks", s.ExecTime, other.ExecTime)
	}
	for c := proto.Class(0); c < proto.NumClasses; c++ {
		if s.Traffic.Bytes[c] != other.Traffic.Bytes[c] || s.Traffic.Messages[c] != other.Traffic.Messages[c] {
			return fmt.Sprintf("%s traffic differs: %d B/%d msgs vs %d B/%d msgs", c,
				s.Traffic.Bytes[c], s.Traffic.Messages[c], other.Traffic.Bytes[c], other.Traffic.Messages[c])
		}
	}
	names := make([]string, 0, len(s.Counters)+len(other.Counters))
	seen := make(map[string]bool, len(s.Counters)+len(other.Counters))
	for k := range s.Counters {
		names, seen[k] = append(names, k), true
	}
	for k := range other.Counters {
		if !seen[k] {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		if s.Counters[k] != other.Counters[k] {
			return fmt.Sprintf("counter %q differs: %d vs %d", k, s.Counters[k], other.Counters[k])
		}
	}
	return ""
}

// FNV-1a 64-bit parameters, used for deterministic fingerprints.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// FNVAdd folds one 64-bit value into an FNV-1a hash, byte by byte.
func FNVAdd(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime
		x >>= 8
	}
	return h
}

// FNVAddString folds a string into an FNV-1a hash.
func FNVAddString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// FNVOffset returns the FNV-1a initial hash state.
func FNVOffset() uint64 { return fnvOffset }

// Fingerprint returns a deterministic FNV-1a hash of the snapshot: exec
// time, the full per-class traffic breakdown, and every counter in sorted
// order. Two runs are bit-identical iff their fingerprints match.
func (s Snapshot) Fingerprint() uint64 {
	h := FNVAdd(fnvOffset, uint64(s.ExecTime))
	for c := range s.Traffic.Bytes {
		h = FNVAdd(h, s.Traffic.Bytes[c])
		h = FNVAdd(h, s.Traffic.Messages[c])
	}
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h = FNVAddString(h, k)
		h = FNVAdd(h, s.Counters[k])
	}
	return h
}

// Summary renders a human-readable report. The output is deterministic:
// traffic classes appear in proto.Class order and counters in
// CounterNames' sorted order, so identical runs yield byte-identical
// summaries (diff-friendly in CI logs and golden files).
func (s *Stats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exec time: %.3f us\n", float64(s.ExecTime)/1e6)
	fmt.Fprintf(&b, "network traffic (bytes):\n")
	for c := proto.Class(0); c < proto.NumClasses; c++ {
		if s.Traffic.Bytes[c] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-8s %12d bytes %10d msgs\n",
			c, s.Traffic.Bytes[c], s.Traffic.Messages[c])
	}
	fmt.Fprintf(&b, "  %-8s %12d bytes (excl. mem)\n", "total", s.Traffic.TotalBytes(false))
	for _, k := range s.CounterNames() {
		fmt.Fprintf(&b, "  %-28s %12d\n", k, s.Get(k))
	}
	return b.String()
}
