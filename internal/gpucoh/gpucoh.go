// Package gpucoh implements the GPU coherence protocol (paper §II-B): a
// simple, high-bandwidth L1 strategy with write-through stores, atomics
// performed at the backing cache, line-granularity self-invalidated reads,
// and no ownership or sharer state. Synchronization acquires flash-
// invalidate the whole cache; releases drain the write buffer.
//
// The controller speaks the Spandex request vocabulary natively (paper
// Table II: Read→ReqV line, Write→ReqWT word, RMW→ReqWT+data word), so the
// same implementation attaches to a Spandex LLC and to the hierarchical
// baseline's intermediate GPU L2. The TU duties the paper assigns to a
// GPU-coherence device — coalescing partial word-granularity responses and
// retrying Nacked ReqVs as ReqWT+data (§III-D) — are folded into the
// controller's miss-handling so both attachments share them; the Spandex
// configurations additionally charge the TU's lookup latency at the shim.
package gpucoh

import (
	"fmt"

	"spandex/internal/cache"
	"spandex/internal/device"
	"spandex/internal/memaddr"
	"spandex/internal/noc"
	"spandex/internal/obs"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// Config parameterizes a GPU coherence L1.
type Config struct {
	SizeBytes          int
	Ways               int
	MSHREntries        int
	WriteBufferEntries int
	// HitLatency is the L1 hit time.
	HitLatency sim.Time
	// ParentID is the backing cache (Spandex LLC or hierarchical GPU L2).
	ParentID proto.NodeID
	// ParentBanks makes the parent an address-interleaved bank array at
	// NodeIDs ParentID..ParentID+ParentBanks-1; requests go to the target
	// line's home bank. 0 or 1 is the flat single parent.
	ParentBanks int
}

// DefaultConfig returns the paper's Table VI L1 parameters.
func DefaultConfig(parent proto.NodeID) Config {
	return Config{
		SizeBytes: 32 * 1024, Ways: 8,
		MSHREntries: 128, WriteBufferEntries: 128,
		HitLatency: sim.GPUCycle,
		ParentID:   parent,
	}
}

// line is the per-line L1 state: valid words and their data. GPU coherence
// tracks no ownership and no sharers.
type line struct {
	valid memaddr.WordMask
	data  memaddr.LineData
}

type waiter struct {
	word int
	done func(uint32)
}

// pendingAtomic is an outstanding ReqWT+data atomic. On response the word
// is downgraded locally — the RspWT+data value is potentially stale the
// moment it arrives (paper §III-A) — before done fires.
type pendingAtomic struct {
	la   memaddr.LineAddr
	mask memaddr.WordMask
	done func(uint32)
}

// mshrEntry tracks one outstanding line read.
type mshrEntry struct {
	reqID   uint64
	trace   uint64
	want    memaddr.WordMask
	arrived memaddr.WordMask
	// noCache marks words fetched via the Nack-escape ReqWT+data path,
	// whose response data must not be cached (paper §III-A: RspWT+data
	// triggers a downgrade since the data is potentially stale).
	noCache memaddr.WordMask
	// retried marks words whose first ReqV retry has been spent (§III-C3:
	// after one failed retry the request escalates).
	retried memaddr.WordMask
	data    memaddr.LineData
	waiters []waiter
}

// L1 is a GPU coherence L1 cache controller.
type L1 struct {
	ID  proto.NodeID
	eng *sim.Engine
	st  *stats.Stats
	cfg Config

	port noc.Port

	// out is the sendV scratch slot (see sendV).
	out proto.Message

	array *cache.Array[line]
	mshr  *cache.MSHR[mshrEntry]
	wb    *cache.WriteBuffer

	// wtArrived accumulates partial RspWT masks per in-flight line.
	wtArrived map[memaddr.LineAddr]memaddr.WordMask
	wtIssued  map[memaddr.LineAddr]memaddr.WordMask

	// atomics maps outstanding ReqWT+data request IDs to their pending
	// completion. Stored by value so issuing an atomic does not allocate.
	atomics map[uint64]pendingAtomic

	flushWaiters []func()
	reqSeq       uint64

	obs *obs.Recorder
	// curTrace is the trace id of the operation currently inside Access,
	// carried onto the line read (loads) it opens. Write-throughs issue
	// after the store has retired, so ReqWT stays untracked; atomics carry
	// op.Trace directly.
	curTrace uint64
}

// SetObserver installs the observability recorder; nil disables
// instrumentation (MSHR occupancy samples and request-trace threading).
func (l *L1) SetObserver(r *obs.Recorder) { l.obs = r }

// mshrOcc samples the MSHR occupancy (caller checks l.obs != nil).
func (l *L1) mshrOcc() {
	l.obs.Emit(obs.Event{At: l.eng.Now(), Kind: obs.EvOccupancy,
		Node: l.ID, Res: "mshr", Arg: uint64(l.mshr.Len())})
}

// New creates a GPU coherence L1. The caller must register it (or its TU
// shim) as the network handler for id and supply the matching port.
func New(id proto.NodeID, eng *sim.Engine, port noc.Port, st *stats.Stats, cfg Config) *L1 {
	return &L1{
		ID: id, eng: eng, st: st, cfg: cfg, port: port,
		array:     cache.NewArray[line](cfg.SizeBytes, cfg.Ways),
		mshr:      cache.NewMSHR[mshrEntry](cfg.MSHREntries),
		wb:        cache.NewWriteBuffer(cfg.WriteBufferEntries),
		wtArrived: make(map[memaddr.LineAddr]memaddr.WordMask),
		wtIssued:  make(map[memaddr.LineAddr]memaddr.WordMask),
		atomics:   make(map[uint64]pendingAtomic),
	}
}

var _ device.L1Cache = (*L1)(nil)

// sendV transmits a by-value message through the port. Every port Send
// copies the message synchronously before anything downstream can run, so
// a single scratch slot per sender is safe and avoids a heap allocation
// per send (the &proto.Message{...} literal idiom escapes through the
// Port interface).
func (l *L1) sendV(m proto.Message) {
	l.out = m
	l.port.Send(&l.out)
}

// parent returns line's home node: ParentID for a flat parent, the
// line's bank for an interleaved one (see Config.ParentBanks).
func (l *L1) parent(line memaddr.LineAddr) proto.NodeID {
	return proto.HomeOf(l.cfg.ParentID, l.cfg.ParentBanks, line)
}

func (l *L1) nextReq() uint64 {
	l.reqSeq++
	return l.reqSeq
}

// Access implements device.L1Cache.
func (l *L1) Access(op device.Op, done func(uint32)) bool {
	l.curTrace = op.Trace
	switch op.Kind {
	case device.OpLoad:
		return l.load(op.Addr, done)
	case device.OpStore:
		if op.IsSubWordStore() {
			// Byte-granularity stores become word-granularity RMWs so the
			// unmodified bytes stay up-to-date (paper §III-B).
			return l.atomic(op.AsByteMerge(), done)
		}
		return l.store(op.Addr, op.Value, done)
	case device.OpAtomic:
		return l.atomic(op, done)
	default:
		panic(fmt.Sprintf("gpucoh: bad op %v", op.Kind))
	}
}

func (l *L1) load(addr memaddr.Addr, done func(uint32)) bool {
	la, w := addr.Line(), addr.WordIndex()
	// Store-to-load forwarding from the write buffer.
	if v, ok := l.wb.ReadForward(addr); ok {
		l.st.Inc("gpul1.wb_fwd", 1)
		l.eng.ScheduleCall(l.cfg.HitLatency, done, v)
		return true
	}
	if e := l.array.Lookup(la); e != nil && e.State.valid.Has(w) {
		v := e.State.data[w]
		l.st.Inc("gpul1.hit", 1)
		l.eng.ScheduleCall(l.cfg.HitLatency, done, v)
		return true
	}
	// Miss: line-granularity ReqV (Table II).
	if m := l.mshr.Lookup(la); m != nil {
		if m.arrived.Has(w) {
			v := m.data[w]
			l.eng.ScheduleCall(l.cfg.HitLatency, done, v)
			return true
		}
		m.waiters = append(m.waiters, waiter{word: w, done: done})
		return true
	}
	if l.mshr.Full() {
		l.st.Inc("gpul1.mshr_stall", 1)
		return false
	}
	m := l.mshr.AllocReuse(la)
	*m = mshrEntry{reqID: l.nextReq(), trace: l.curTrace,
		want: memaddr.FullMask, waiters: m.waiters[:0]}
	m.waiters = append(m.waiters, waiter{word: w, done: done})
	l.st.Inc("gpul1.miss", 1)
	if l.obs != nil {
		l.mshrOcc()
	}
	l.sendV(proto.Message{
		Type: proto.ReqV, Dst: l.parent(la), Requestor: l.ID,
		ReqID: m.reqID, Line: la, Mask: memaddr.FullMask, Trace: m.trace,
	})
	return true
}

func (l *L1) store(addr memaddr.Addr, value uint32, done func(uint32)) bool {
	la := addr.Line()
	e := l.wb.Lookup(la)
	switch {
	case e != nil && !e.Issued:
		l.wb.Put(addr, value)
	case e != nil && e.Issued:
		// One outstanding write-through per line keeps response matching
		// unambiguous; rare in streaming workloads.
		l.st.Inc("gpul1.wb_conflict", 1)
		return false
	case l.wb.Full():
		l.st.Inc("gpul1.wb_stall", 1)
		return false
	default:
		l.wb.Put(addr, value)
		// Lazy drain (paper §II-B: coalescing in the write buffer): issue
		// only under occupancy pressure or at a release flush, so nearby
		// stores to a line merge into one ReqWT.
		l.drainPressure()
	}
	// Keep the local copy coherent with our own stores.
	if ce := l.array.Peek(la); ce != nil {
		ce.State.data[addr.WordIndex()] = value
		ce.State.valid |= addr.WordMaskOf()
	}
	done(0)
	return true
}

// drainPressure issues the oldest buffered lines while occupancy exceeds
// three quarters of capacity.
func (l *L1) drainPressure() {
	for l.wb.UnissuedCount() > l.cfg.WriteBufferEntries*3/4 {
		e := l.wb.NextUnissued()
		if e == nil {
			return
		}
		l.issueWT(e.Line)
	}
}

// issueWT sends the coalesced write-through for a buffered line.
func (l *L1) issueWT(la memaddr.LineAddr) {
	e := l.wb.Lookup(la)
	if e == nil || e.Issued {
		return
	}
	l.wb.MarkIssued(e)
	id := l.nextReq()
	l.wtIssued[la] = e.Mask
	l.wtArrived[la] = 0
	l.sendV(proto.Message{
		Type: proto.ReqWT, Dst: l.parent(la), Requestor: l.ID,
		ReqID: id, Line: la, Mask: e.Mask, HasData: true, Data: e.Data,
	})
	l.st.Inc("gpul1.wt", 1)
}

func (l *L1) atomic(op device.Op, done func(uint32)) bool {
	if len(l.atomics) >= l.cfg.MSHREntries {
		return false
	}
	la := op.Addr.Line()
	id := l.nextReq()
	l.atomics[id] = pendingAtomic{la: la, mask: op.Addr.WordMaskOf(), done: done}
	l.sendV(proto.Message{
		Type: proto.ReqWTData, Dst: l.parent(la), Requestor: l.ID,
		ReqID: id, Line: la, Mask: op.Addr.WordMaskOf(),
		Atomic: op.Atomic, Operand: op.Value, Compare: op.Compare,
		Trace: op.Trace,
	})
	l.st.Inc("gpul1.atomic", 1)
	return true
}

// SelfInvalidate implements the acquire flash: every Valid word drops
// (GPU coherence holds nothing but Valid state, so the whole cache clears).
func (l *L1) SelfInvalidate() {
	l.array.InvalidateWhere(func(e *cache.Entry[line]) bool { return true })
	l.st.Inc("gpul1.selfinv", 1)
}

// Flush implements the release drain: done fires once every buffered
// write-through has been acknowledged.
func (l *L1) Flush(done func()) {
	// Push out anything still waiting on its coalescing window.
	for _, e := range l.wb.Unissued() {
		l.issueWT(e.Line)
	}
	if l.wb.Empty() {
		done()
		return
	}
	l.flushWaiters = append(l.flushWaiters, done)
}

func (l *L1) checkFlush() {
	if !l.wb.Empty() {
		return
	}
	ws := l.flushWaiters
	l.flushWaiters = nil
	for _, w := range ws {
		w()
	}
}

// ProbeOwned implements core.DeviceProbe: GPU coherence never owns.
func (l *L1) ProbeOwned() map[memaddr.LineAddr]memaddr.WordMask { return nil }

// HandleMessage implements noc.Handler.
func (l *L1) HandleMessage(m *proto.Message) {
	switch m.Type {
	case proto.RspV:
		l.fill(m.Line, m.Mask, &m.Data, 0)
	case proto.NackV:
		l.handleNack(m)
	case proto.RspWT:
		l.handleRspWT(m)
	case proto.RspWTData:
		if p, ok := l.atomics[m.ReqID]; ok {
			delete(l.atomics, m.ReqID)
			if ce := l.array.Peek(p.la); ce != nil {
				ce.State.valid &^= p.mask
			}
			w := firstWord(m.Mask)
			p.done(m.Data[w])
			return
		}
		// Nack-escape fill: value usable, word not cacheable.
		l.fill(m.Line, m.Mask, &m.Data, m.Mask)
	case proto.Inv:
		// GPU coherence holds no Shared state; a stray Inv (e.g. a stale
		// sharer record) is acked without state change (paper §III-C3).
		l.array.Invalidate(m.Line)
		l.sendV(proto.Message{Type: proto.InvAck, Dst: m.Src, Line: m.Line, Mask: m.Mask, Trace: m.Trace})
	default:
		panic("gpucoh: unexpected message " + m.Type.String())
	}
}

func firstWord(m memaddr.WordMask) int {
	for i := 0; i < memaddr.WordsPerLine; i++ {
		if m.Has(i) {
			return i
		}
	}
	panic("gpucoh: empty mask")
}

// handleNack retries a Nacked word once as ReqV, then escalates to
// ReqWT+data, which the LLC orders globally (paper §III-C3).
func (l *L1) handleNack(m *proto.Message) {
	e := l.mshr.Lookup(m.Line)
	if e == nil {
		return // request already satisfied via another path
	}
	fresh := m.Mask &^ e.retried &^ e.arrived
	if fresh != 0 {
		e.retried |= fresh
		l.st.Inc("gpul1.nack_retry", 1)
		l.sendV(proto.Message{
			Type: proto.ReqV, Dst: l.parent(m.Line), Requestor: l.ID,
			ReqID: e.reqID, Line: m.Line, Mask: fresh, Trace: e.trace,
		})
	}
	escalate := m.Mask & e.retried &^ e.arrived & ^fresh
	escalate.ForEach(func(i int) {
		l.st.Inc("gpul1.nack_escalate", 1)
		l.sendV(proto.Message{
			Type: proto.ReqWTData, Dst: l.parent(m.Line), Requestor: l.ID,
			ReqID: e.reqID, Line: m.Line, Mask: memaddr.MaskOf(i),
			Atomic: proto.AtomicRead, Trace: e.trace,
		})
	})
}

// fill merges arriving words into the outstanding line read, completes
// waiting loads, and installs the line once every requested word arrived.
func (l *L1) fill(la memaddr.LineAddr, mask memaddr.WordMask, data *memaddr.LineData, noCache memaddr.WordMask) {
	e := l.mshr.Lookup(la)
	if e == nil {
		return // stale response for an entry completed by escalation
	}
	fresh := mask &^ e.arrived
	e.arrived |= fresh
	e.noCache |= noCache & fresh
	e.data.Merge(data, fresh)

	// In-place compaction keeps the slot's waiter capacity alive across
	// Free/AllocReuse cycles (rest aliases e.waiters' backing array).
	rest := e.waiters[:0]
	for _, w := range e.waiters {
		if e.arrived.Has(w.word) {
			v := e.data[w.word]
			l.eng.ScheduleCall(0, w.done, v)
		} else {
			rest = append(rest, w)
		}
	}
	e.waiters = rest

	if e.arrived&e.want != e.want {
		return
	}
	// Complete: install cacheable words.
	cacheable := e.arrived &^ e.noCache
	if cacheable != 0 {
		frame := l.array.Victim(la)
		if frame.Valid {
			// Write-through cache: victims are clean, drop silently.
			l.array.Invalidate(frame.Line)
			frame = l.array.Victim(la)
		}
		l.array.Install(frame, la)
		frame.State.valid = cacheable
		frame.State.data = e.data
		// Our own buffered stores stay visible over the fill.
		if wbe := l.wb.Lookup(la); wbe != nil {
			frame.State.data.Merge(&wbe.Data, wbe.Mask)
			frame.State.valid |= wbe.Mask
		}
	}
	l.mshr.Free(la)
	if l.obs != nil {
		l.mshrOcc()
	}
}

func (l *L1) handleRspWT(m *proto.Message) {
	issued, ok := l.wtIssued[m.Line]
	if !ok {
		return
	}
	l.wtArrived[m.Line] |= m.Mask
	if l.wtArrived[m.Line]&issued != issued {
		return
	}
	delete(l.wtIssued, m.Line)
	delete(l.wtArrived, m.Line)
	l.wb.Complete(m.Line)
	l.checkFlush()
}
