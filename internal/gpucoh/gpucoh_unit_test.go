package gpucoh

import (
	"testing"

	"spandex/internal/device"
	"spandex/internal/memaddr"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// scriptPort captures outbound messages for hand-driven protocol tests.
type scriptPort struct{ sent []proto.Message }

func (p *scriptPort) Send(m *proto.Message) { p.sent = append(p.sent, *m) }
func (p *scriptPort) take() []proto.Message {
	out := p.sent
	p.sent = nil
	return out
}

type grig struct {
	t    *testing.T
	eng  *sim.Engine
	port *scriptPort
	l1   *L1
}

func newGRig(t *testing.T) *grig {
	eng := sim.New()
	port := &scriptPort{}
	l1 := New(0, eng, port, stats.New(), DefaultConfig(99))
	return &grig{t: t, eng: eng, port: port, l1: l1}
}

func TestLineReadCoalescesPartialResponses(t *testing.T) {
	// The TU duty from §III-D: a line ReqV answered by the LLC (partial)
	// and an owner (rest) completes only when the union covers the line;
	// loads complete per-word as data arrives.
	r := newGRig(t)
	var v0, v9 uint32
	d0, d9 := false, false
	r.l1.Access(device.Op{Kind: device.OpLoad, Addr: 0x1000}, func(v uint32) { v0 = v; d0 = true })
	r.l1.Access(device.Op{Kind: device.OpLoad, Addr: 0x1024}, func(v uint32) { v9 = v; d9 = true })
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.ReqV || sent[0].Mask != memaddr.FullMask {
		t.Fatalf("expected one line ReqV, got %v", sent)
	}
	reqID := sent[0].ReqID

	// Partial 1: LLC covers everything except word 9.
	var data memaddr.LineData
	data[0] = 100
	r.l1.HandleMessage(&proto.Message{Type: proto.RspV, Src: 99, ReqID: reqID,
		Line: 0x1000, Mask: memaddr.FullMask &^ (1 << 9), HasData: true, Data: data})
	r.eng.Run()
	if !d0 || v0 != 100 {
		t.Fatal("covered word did not complete early")
	}
	if d9 {
		t.Fatal("uncovered word completed prematurely")
	}
	// Partial 2: the owner supplies word 9 directly.
	var data2 memaddr.LineData
	data2[9] = 900
	r.l1.HandleMessage(&proto.Message{Type: proto.RspV, Src: 7, ReqID: reqID,
		Line: 0x1000, Mask: 1 << 9, HasData: true, Data: data2})
	r.eng.Run()
	if !d9 || v9 != 900 {
		t.Fatalf("owner partial lost: %d,%v", v9, d9)
	}
	// The line is installed: further loads hit locally.
	hit := false
	r.l1.Access(device.Op{Kind: device.OpLoad, Addr: 0x1024}, func(v uint32) { hit = v == 900 })
	r.eng.Run()
	if !hit || len(r.port.take()) != 0 {
		t.Fatal("post-fill load missed")
	}
}

func TestNackRetryThenEscalateToReqWTData(t *testing.T) {
	r := newGRig(t)
	var got uint32
	done := false
	r.l1.Access(device.Op{Kind: device.OpLoad, Addr: 0x2000}, func(v uint32) { got = v; done = true })
	r.eng.Run()
	first := r.port.take()
	reqID := first[0].ReqID

	// LLC covers all but word 0; the presumed owner Nacks word 0 twice.
	r.l1.HandleMessage(&proto.Message{Type: proto.RspV, Src: 99, ReqID: reqID,
		Line: 0x2000, Mask: memaddr.FullMask &^ 1, HasData: true})
	r.l1.HandleMessage(&proto.Message{Type: proto.NackV, Src: 7, ReqID: reqID,
		Line: 0x2000, Mask: 1})
	r.eng.Run()
	retry := r.port.take()
	if len(retry) != 1 || retry[0].Type != proto.ReqV || retry[0].Mask != 1 {
		t.Fatalf("first Nack must retry ReqV(word): %v", retry)
	}
	r.l1.HandleMessage(&proto.Message{Type: proto.NackV, Src: 7, ReqID: reqID,
		Line: 0x2000, Mask: 1})
	r.eng.Run()
	esc := r.port.take()
	if len(esc) != 1 || esc[0].Type != proto.ReqWTData || esc[0].Atomic != proto.AtomicRead {
		t.Fatalf("second Nack must escalate to ReqWT+data read: %v", esc)
	}
	// The escalation's response completes the load but is NOT cacheable
	// (paper §III-A: RspWT+data data is potentially stale).
	var d memaddr.LineData
	d[0] = 55
	r.l1.HandleMessage(&proto.Message{Type: proto.RspWTData, Src: 99, ReqID: reqID,
		Line: 0x2000, Mask: 1, HasData: true, Data: d})
	r.eng.Run()
	if !done || got != 55 {
		t.Fatalf("escalated load got %d,%v", got, done)
	}
	// Word 0 must not be cached: the next load misses again.
	r.l1.Access(device.Op{Kind: device.OpLoad, Addr: 0x2000}, func(uint32) {})
	r.eng.Run()
	again := r.port.take()
	if len(again) != 1 || again[0].Type != proto.ReqV {
		t.Fatalf("escalated word was cached: %v", again)
	}
}

func TestWriteThroughPartialAcks(t *testing.T) {
	// Under Spandex a ReqWT's acks may come from the LLC (plain words) and
	// an old owner (forwarded words); the entry completes on full cover.
	r := newGRig(t)
	r.l1.Access(device.Op{Kind: device.OpStore, Addr: 0x3000, Value: 1}, func(uint32) {})
	r.l1.Access(device.Op{Kind: device.OpStore, Addr: 0x3004, Value: 2}, func(uint32) {})
	r.l1.Flush(func() {})
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.ReqWT || sent[0].Mask != 0b11 {
		t.Fatalf("coalesced WT wrong: %v", sent)
	}
	flushed := false
	r.l1.Flush(func() { flushed = true })
	if flushed {
		t.Fatal("flush completed with WT outstanding")
	}
	r.l1.HandleMessage(&proto.Message{Type: proto.RspWT, Src: 99,
		ReqID: sent[0].ReqID, Line: 0x3000, Mask: 0b01})
	r.eng.Run()
	if flushed {
		t.Fatal("flush completed on partial ack")
	}
	r.l1.HandleMessage(&proto.Message{Type: proto.RspWT, Src: 7,
		ReqID: sent[0].ReqID, Line: 0x3000, Mask: 0b10})
	r.eng.Run()
	if !flushed {
		t.Fatal("flush never completed")
	}
}

func TestAtomicBypassesL1(t *testing.T) {
	r := newGRig(t)
	var got uint32
	done := false
	r.l1.Access(device.Op{Kind: device.OpAtomic, Addr: 0x4000,
		Atomic: proto.AtomicFetchAdd, Value: 2}, func(v uint32) { got = v; done = true })
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.ReqWTData || sent[0].Operand != 2 {
		t.Fatalf("atomic request wrong: %v", sent)
	}
	var d memaddr.LineData
	d[0] = 40
	r.l1.HandleMessage(&proto.Message{Type: proto.RspWTData, Src: 99,
		ReqID: sent[0].ReqID, Line: 0x4000, Mask: 1, HasData: true, Data: d})
	r.eng.Run()
	if !done || got != 40 {
		t.Fatalf("atomic got %d,%v", got, done)
	}
}

func TestProbeOwnedEmpty(t *testing.T) {
	r := newGRig(t)
	if owned := r.l1.ProbeOwned(); len(owned) != 0 {
		t.Fatal("GPU coherence never owns")
	}
}

func TestStrayResponsesIgnored(t *testing.T) {
	// Responses for transactions that no longer exist must not crash or
	// corrupt state (possible after escalation completes an entry).
	r := newGRig(t)
	var d memaddr.LineData
	r.l1.HandleMessage(&proto.Message{Type: proto.RspV, Src: 99, ReqID: 1234,
		Line: 0x5000, Mask: memaddr.FullMask, HasData: true, Data: d})
	r.l1.HandleMessage(&proto.Message{Type: proto.RspWT, Src: 99, ReqID: 1235,
		Line: 0x5000, Mask: 1})
	r.eng.Run()
	// The stray RspV must not have installed anything.
	miss := false
	r.l1.Access(device.Op{Kind: device.OpLoad, Addr: 0x5000}, func(uint32) {})
	r.eng.Run()
	for _, m := range r.port.take() {
		if m.Type == proto.ReqV {
			miss = true
		}
	}
	if !miss {
		t.Fatal("stray response installed a line")
	}
}
