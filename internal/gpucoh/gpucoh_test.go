package gpucoh

import (
	"testing"

	"spandex/internal/core"
	"spandex/internal/device"
	"spandex/internal/dram"
	"spandex/internal/memaddr"
	"spandex/internal/noc"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// rig wires N GPU-coherence L1s to a Spandex LLC.
type rig struct {
	t   *testing.T
	eng *sim.Engine
	st  *stats.Stats
	net *noc.Network
	llc *core.LLC
	mem *dram.Memory
	l1s []*L1
	chk *core.Checker
}

func newRig(t *testing.T, n int) *rig {
	r := &rig{t: t, eng: sim.New(), st: stats.New()}
	r.net = noc.New(r.eng, r.st, noc.DefaultConfig(), n+2)
	llcID, memID := proto.NodeID(n), proto.NodeID(n+1)
	r.llc = core.NewLLC(llcID, memID, r.eng, r.net, r.st,
		core.Config{SizeBytes: 64 * 1024, Ways: 8, AccessLatency: 12 * sim.CPUCycle})
	r.mem = dram.New(memID, r.eng, r.net, 80*sim.CPUCycle)
	r.chk = core.NewChecker()
	r.llc.SetChecker(r.chk)
	for i := 0; i < n; i++ {
		id := proto.NodeID(i)
		l1 := New(id, r.eng, r.net.PortFor(id), r.st, DefaultConfig(llcID))
		r.net.Register(id, l1)
		r.llc.RegisterDevice(id, false)
		r.chk.AttachDevice(id, l1)
		r.l1s = append(r.l1s, l1)
	}
	return r
}

func (r *rig) run() {
	if !r.eng.RunUntil(1 << 42) {
		r.t.Fatal("rig: did not drain")
	}
	if err := r.chk.CheckQuiescent(r.llc); err != nil {
		r.t.Fatal(err)
	}
}

// load performs a blocking load and returns the value.
func (r *rig) load(l1 *L1, addr memaddr.Addr) uint32 {
	var got uint32
	hit := false
	if !l1.Access(device.Op{Kind: device.OpLoad, Addr: addr}, func(v uint32) { got = v; hit = true }) {
		r.t.Fatal("load rejected")
	}
	r.run()
	if !hit {
		r.t.Fatal("load never completed")
	}
	return got
}

// store buffers a write and flushes it to global visibility (the write
// buffer drains lazily; tests that exercise coalescing use raw Access).
func (r *rig) store(l1 *L1, addr memaddr.Addr, v uint32) {
	op := device.Op{Kind: device.OpStore, Addr: addr, Value: v}
	for tries := 0; ; tries++ {
		if l1.Access(op, func(uint32) {}) {
			break
		}
		// Buffer full: let the memory system drain, as a device would.
		if !r.eng.Step() || tries > 1<<20 {
			r.t.Fatal("store rejected with nothing in flight")
		}
	}
	l1.Flush(func() {})
	r.run()
}

func (r *rig) atomic(l1 *L1, addr memaddr.Addr, kind proto.AtomicKind, operand uint32) uint32 {
	var got uint32
	ok := false
	if !l1.Access(device.Op{Kind: device.OpAtomic, Addr: addr, Atomic: kind, Value: operand},
		func(v uint32) { got = v; ok = true }) {
		r.t.Fatal("atomic rejected")
	}
	r.run()
	if !ok {
		r.t.Fatal("atomic never completed")
	}
	return got
}

func TestLoadMissFillsLine(t *testing.T) {
	r := newRig(t, 1)
	var init memaddr.LineData
	for i := range init {
		init[i] = uint32(i + 1)
	}
	r.mem.Poke(0x1000, init)
	if v := r.load(r.l1s[0], 0x1004); v != 2 {
		t.Fatalf("v = %d", v)
	}
	missesAfterFirst := r.st.Get("gpul1.miss")
	// Same line, different word: line-granularity fill means a hit.
	if v := r.load(r.l1s[0], 0x103c); v != 16 {
		t.Fatalf("v = %d", v)
	}
	if r.st.Get("gpul1.miss") != missesAfterFirst {
		t.Fatal("second load missed despite line fill")
	}
	if r.st.Get("gpul1.hit") == 0 {
		t.Fatal("no hit recorded")
	}
}

func TestWriteThroughVisibleToOtherL1(t *testing.T) {
	r := newRig(t, 2)
	r.store(r.l1s[0], 0x2000, 77)
	r.run()
	if v := r.load(r.l1s[1], 0x2000); v != 77 {
		t.Fatalf("remote load got %d", v)
	}
}

func TestStoreCoalescing(t *testing.T) {
	r := newRig(t, 1)
	for i := 0; i < 8; i++ {
		if !r.l1s[0].Access(device.Op{Kind: device.OpStore,
			Addr: memaddr.Addr(0x3000 + i*4), Value: uint32(i)}, func(uint32) {}) {
			t.Fatal("store rejected")
		}
	}
	r.l1s[0].Flush(func() {})
	r.run()
	if n := r.st.Get("gpul1.wt"); n != 1 {
		t.Fatalf("write-throughs = %d, want 1 (coalesced)", n)
	}
	// All values at the LLC.
	for i := 0; i < 8; i++ {
		if v := r.load(r.l1s[0], memaddr.Addr(0x3000+i*4)); v != uint32(i) {
			t.Fatalf("word %d = %d", i, v)
		}
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	r := newRig(t, 1)
	// Buffer a store without flushing: the read-back must forward from
	// the write buffer.
	if !r.l1s[0].Access(device.Op{Kind: device.OpStore, Addr: 0x4000, Value: 5}, func(uint32) {}) {
		t.Fatal("store rejected")
	}
	if v := r.load(r.l1s[0], 0x4000); v != 5 {
		t.Fatalf("v = %d", v)
	}
}

func TestAtomicsSerializeAtLLC(t *testing.T) {
	r := newRig(t, 2)
	a := r.atomic(r.l1s[0], 0x5000, proto.AtomicFetchAdd, 1)
	b := r.atomic(r.l1s[1], 0x5000, proto.AtomicFetchAdd, 1)
	if a != 0 || b != 1 {
		t.Fatalf("a=%d b=%d", a, b)
	}
	if v := r.load(r.l1s[0], 0x5000); v != 2 {
		t.Fatalf("final = %d", v)
	}
}

func TestAtomicDowngradesLocalWord(t *testing.T) {
	r := newRig(t, 1)
	l1 := r.l1s[0]
	r.load(l1, 0x6000) // cache the line
	r.atomic(l1, 0x6000, proto.AtomicFetchAdd, 3)
	// Word must no longer be valid locally (the response data is stale by
	// definition); next load refetches and sees the updated value.
	missBefore := r.st.Get("gpul1.miss")
	if v := r.load(l1, 0x6000); v != 3 {
		t.Fatalf("v = %d", v)
	}
	if r.st.Get("gpul1.miss") != missBefore+1 {
		t.Fatal("load after atomic did not miss")
	}
}

func TestSelfInvalidateDropsStaleData(t *testing.T) {
	r := newRig(t, 2)
	a, b := r.l1s[0], r.l1s[1]
	if v := r.load(a, 0x7000); v != 0 {
		t.Fatalf("v = %d", v)
	}
	// Remote write-through.
	r.store(b, 0x7000, 9)
	r.run()
	// Without invalidation the stale 0 is still cached.
	if v := r.load(a, 0x7000); v != 0 {
		t.Fatal("expected stale hit before self-invalidation (self-inv model)")
	}
	a.SelfInvalidate()
	if v := r.load(a, 0x7000); v != 9 {
		t.Fatalf("post-acquire load = %d", v)
	}
}

func TestFlushWaitsForWriteThroughs(t *testing.T) {
	r := newRig(t, 1)
	l1 := r.l1s[0]
	// Buffer two stores without draining.
	for _, a := range []memaddr.Addr{0x8000, 0x8100} {
		if !l1.Access(device.Op{Kind: device.OpStore, Addr: a,
			Value: uint32(a >> 8)}, func(uint32) {}) {
			t.Fatal("store rejected")
		}
	}
	flushed := false
	l1.Flush(func() { flushed = true })
	if flushed {
		t.Fatal("flush completed with write-throughs in flight")
	}
	r.run()
	if !flushed {
		t.Fatal("flush never completed")
	}
	if v := r.load(l1, 0x8100); v != 0x81 {
		t.Fatalf("v = %d", v)
	}
}

func TestManyLinesEvictionSafe(t *testing.T) {
	// Stream far more lines than the 32KB L1 holds; write-through caches
	// evict silently and everything stays consistent.
	r := newRig(t, 1)
	l1 := r.l1s[0]
	for i := 0; i < 2048; i++ {
		r.store(l1, memaddr.Addr(0x10000+i*64), uint32(i))
	}
	r.run()
	for i := 0; i < 2048; i += 97 {
		if v := r.load(l1, memaddr.Addr(0x10000+i*64)); v != uint32(i) {
			t.Fatalf("line %d = %d", i, v)
		}
	}
}

func TestCASAtLLC(t *testing.T) {
	r := newRig(t, 2)
	if old := r.atomic(r.l1s[0], 0x9000, proto.AtomicFetchAdd, 10); old != 0 {
		t.Fatalf("old = %d", old)
	}
	// CAS succeeds when expectation matches.
	var got uint32
	done := false
	r.l1s[1].Access(device.Op{Kind: device.OpAtomic, Addr: 0x9000,
		Atomic: proto.AtomicCAS, Value: 99, Compare: 10},
		func(v uint32) { got = v; done = true })
	r.run()
	if !done || got != 10 {
		t.Fatalf("cas old = %d", got)
	}
	if v := r.load(r.l1s[0], 0x9000); v != 99 {
		t.Fatalf("final = %d", v)
	}
}
