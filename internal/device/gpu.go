package device

import (
	"fmt"

	"spandex/internal/obs"
	"spandex/internal/proto"
	"spandex/internal/sim"
)

// warpState tracks one warp's execution.
type warpState uint8

const (
	warpReady    warpState = iota // has an operation to issue
	warpBlocked                   // waiting for a memory response or compute
	warpFinished                  // stream exhausted
)

type warp struct {
	stream OpStream
	state  warpState
	op     Op // pending operation when ready

	// Pre-bound continuations, created once at construction: a warp has at
	// most one outstanding operation (held in op), so its completions reuse
	// these instead of capturing per-op state in fresh closures.
	resVal    uint32
	advanceFn func()
	doneFn    func(uint32)
	fenceFn   func()
	issueFn   func()
}

// GPUCU is a latency-tolerant GPU compute unit (paper §II-B): it interleaves
// several warps, issuing at most one memory operation per GPU cycle. A warp
// blocks on its own loads and atomics while other warps continue, hiding
// memory latency. All warps share the CU's L1 cache controller.
type GPUCU struct {
	Name   string
	eng    *sim.Engine
	l1     L1Cache
	warps  []warp
	onDone func()

	rr       int // round-robin issue pointer
	stepFn   func()
	running  bool
	live     int // warps not yet finished
	ops      uint64
	finished bool

	obs  *obs.Recorder
	node proto.NodeID
}

// SetObserver installs the observability recorder; node is the CU's
// network endpoint id (its L1's node). Each warp memory operation and
// fence gets a trace id at its first issue attempt, bracketed by
// EvOpIssue/EvOpDone.
func (g *GPUCU) SetObserver(r *obs.Recorder, node proto.NodeID) {
	g.obs = r
	g.node = node
}

// NewGPUCU creates a compute unit running the given warp streams.
func NewGPUCU(name string, eng *sim.Engine, l1 L1Cache, streams []OpStream, onDone func()) *GPUCU {
	cu := &GPUCU{Name: name, eng: eng, l1: l1, onDone: onDone}
	cu.stepFn = cu.step
	for _, s := range streams {
		cu.warps = append(cu.warps, warp{stream: s, state: warpBlocked})
	}
	for i := range cu.warps {
		i := i
		w := &cu.warps[i]
		w.advanceFn = func() {
			cu.advance(i, OpResult{Valid: true, Value: cu.warps[i].resVal})
		}
		w.doneFn = func(v uint32) { cu.memDone(i, v) }
		w.fenceFn = func() { cu.fenceEnd(i) }
		w.issueFn = func() { cu.issueMem(i) }
	}
	return cu
}

// Start begins execution.
func (g *GPUCU) Start() {
	g.eng.Schedule(0, func() {
		if len(g.warps) == 0 {
			g.finish()
			return
		}
		g.live = len(g.warps)
		for i := range g.warps {
			g.advance(i, OpResult{})
		}
	})
}

// Ops reports completed operation count across warps.
func (g *GPUCU) Ops() uint64 { return g.ops }

// Finished reports whether every warp has completed.
func (g *GPUCU) Finished() bool { return g.finished }

func (g *GPUCU) finish() {
	// Drain buffered write-throughs before the CU retires.
	g.l1.Flush(func() {
		g.finished = true
		if g.onDone != nil {
			g.onDone()
		}
	})
}

// advance fetches warp i's next operation and marks it ready.
func (g *GPUCU) advance(i int, prev OpResult) {
	w := &g.warps[i]
	op, ok := w.stream.Next(prev)
	if !ok {
		w.state = warpFinished
		g.live--
		if g.live == 0 {
			g.finish()
		}
		return
	}
	g.ops++
	w.op = op
	w.state = warpReady
	g.kick()
}

// kick ensures the issue loop is scheduled.
func (g *GPUCU) kick() {
	if g.running {
		return
	}
	g.running = true
	g.eng.Schedule(0, g.stepFn)
}

// step issues at most one operation, then reschedules itself for the next
// GPU cycle while any warp remains ready.
func (g *GPUCU) step() {
	n := len(g.warps)
	anyReady := false
	for i := 0; i < n; i++ {
		idx := g.rr + i
		if idx >= n {
			idx -= n
		}
		w := &g.warps[idx]
		if w.state != warpReady {
			continue
		}
		if g.tryIssue(idx) {
			g.rr = idx + 1
			if g.rr == n {
				g.rr = 0
			}
			break
		}
		anyReady = true // rejected; stays ready, try another warp
	}
	for i := 0; i < n && !anyReady; i++ {
		if g.warps[i].state == warpReady {
			anyReady = true
		}
	}
	if anyReady {
		g.eng.Schedule(sim.GPUCycle, g.stepFn)
	} else {
		g.running = false
	}
}

// tryIssue attempts to issue warp idx's pending op. It reports whether the
// operation was accepted (or handled without the L1).
func (g *GPUCU) tryIssue(idx int) bool {
	w := &g.warps[idx]
	// The trace is assigned on the first issue attempt and survives
	// structural-stall retries (the warp stays ready with the same op).
	if g.obs != nil && w.op.Kind != OpCompute && w.op.Trace == 0 {
		w.op.Trace = g.obs.NextTrace()
		g.obs.Emit(obs.Event{At: g.eng.Now(), Kind: obs.EvOpIssue,
			Node: g.node, Trace: w.op.Trace, Class: obsClassOf(w.op.Kind),
			Addr: w.op.Addr})
	}
	switch w.op.Kind {
	case OpCompute:
		w.state = warpBlocked
		w.resVal = 0
		g.eng.Schedule(sim.GPUCycles(uint64(w.op.Cycles)), w.advanceFn)
		return true

	case OpFence:
		w.state = warpBlocked
		if w.op.Rel {
			g.l1.Flush(w.fenceFn)
		} else {
			g.fenceEnd(idx)
		}
		return true

	case OpLoad, OpStore, OpAtomic:
		if w.op.Rel {
			// Release: block the warp, drain the write buffer, then issue.
			w.state = warpBlocked
			g.l1.Flush(w.issueFn)
			return true
		}
		// Inline issue during the scheduler step; rejection leaves the
		// warp ready for a later retry.
		if g.l1.Access(w.op, w.doneFn) {
			w.state = warpBlocked
			return true
		}
		return false

	default:
		panic(fmt.Sprintf("device: unknown op kind %v", w.op.Kind))
	}
}

// fenceEnd completes warp idx's in-flight fence (after the release drain,
// when one was required).
func (g *GPUCU) fenceEnd(idx int) {
	w := &g.warps[idx]
	if w.op.Acq {
		AcquireInvalidate(g.l1, w.op)
	}
	if g.obs != nil {
		g.obs.Emit(obs.Event{At: g.eng.Now(), Kind: obs.EvOpDone,
			Node: g.node, Trace: w.op.Trace, Class: obs.ClassFence})
	}
	w.resVal = 0
	g.eng.Schedule(sim.GPUCycle, w.advanceFn)
}

// issueMem issues after a flush; rejection retries every GPU cycle.
func (g *GPUCU) issueMem(idx int) {
	w := &g.warps[idx]
	if g.l1.Access(w.op, w.doneFn) {
		return
	}
	g.eng.Schedule(sim.GPUCycle, w.issueFn)
}

// memDone completes warp idx's in-flight memory operation.
func (g *GPUCU) memDone(idx int, value uint32) {
	w := &g.warps[idx]
	if g.obs != nil {
		g.obs.Emit(obs.Event{At: g.eng.Now(), Kind: obs.EvOpDone,
			Node: g.node, Trace: w.op.Trace, Class: obsClassOf(w.op.Kind),
			Addr: w.op.Addr})
	}
	if w.op.Acq {
		AcquireInvalidate(g.l1, w.op)
	}
	w.resVal = value
	g.eng.Schedule(0, w.advanceFn)
}
