package device

import (
	"fmt"

	"spandex/internal/obs"
	"spandex/internal/proto"
	"spandex/internal/sim"
)

// obsClassOf maps an operation kind to its observability class.
func obsClassOf(k OpKind) obs.OpClass {
	switch k {
	case OpLoad:
		return obs.ClassLoad
	case OpStore:
		return obs.ClassStore
	case OpAtomic:
		return obs.ClassAtomic
	case OpFence:
		return obs.ClassFence
	default:
		panic("obsClassOf: not a traced operation kind")
	}
}

// CPUCore is an in-order, latency-sensitive core (paper §II-A): loads and
// atomics block the core until they complete; stores retire into the L1's
// store buffer; synchronization drains the buffer (release) and
// self-invalidates stale data (acquire, protocol-permitting).
type CPUCore struct {
	Name   string
	eng    *sim.Engine
	l1     L1Cache
	stream OpStream
	onDone func()

	// IssueCost is the fixed per-operation pipeline cost.
	IssueCost sim.Time

	obs  *obs.Recorder
	node proto.NodeID

	ops      uint64
	finished bool

	// The core is in-order with one outstanding operation, so every
	// continuation is pre-bound once at construction and reuses curOp /
	// resVal instead of capturing per-op state in fresh closures.
	curOp  Op
	resVal uint32

	startFn  func()
	advance  func()
	memDone  func(uint32)
	retryFn  func()
	fenceEnd func()
	issueFn  func()
	endFn    func()
}

// SetObserver installs the observability recorder; node is the core's
// network endpoint id (its L1's node), the origin of its requests. The
// core assigns a trace id to every memory operation and fence, emitting
// EvOpIssue/EvOpDone around its lifetime.
func (c *CPUCore) SetObserver(r *obs.Recorder, node proto.NodeID) {
	c.obs = r
	c.node = node
}

// NewCPUCore creates a core executing stream against l1. onDone fires when
// the stream is exhausted and the final operation has completed.
func NewCPUCore(name string, eng *sim.Engine, l1 L1Cache, stream OpStream, onDone func()) *CPUCore {
	c := &CPUCore{Name: name, eng: eng, l1: l1, stream: stream,
		onDone: onDone, IssueCost: sim.CPUCycle}
	c.startFn = func() { c.next(OpResult{}) }
	c.advance = func() { c.next(OpResult{Valid: true, Value: c.resVal}) }
	c.memDone = c.onMemDone
	c.retryFn = c.issueMem
	c.fenceEnd = c.onFenceEnd
	c.issueFn = c.issueMem
	c.endFn = c.onStreamEnd
	return c
}

// Start begins execution (call once, before running the engine).
func (c *CPUCore) Start() {
	c.eng.Schedule(0, c.startFn)
}

// Ops reports how many operations the core has completed.
func (c *CPUCore) Ops() uint64 { return c.ops }

// Finished reports whether the stream has been fully executed.
func (c *CPUCore) Finished() bool { return c.finished }

func (c *CPUCore) next(prev OpResult) {
	op, ok := c.stream.Next(prev)
	if !ok {
		// Drain buffered stores before retiring: lazily coalesced writes
		// must reach the memory system.
		c.l1.Flush(c.endFn)
		return
	}
	c.ops++
	c.exec(op)
}

func (c *CPUCore) onStreamEnd() {
	c.finished = true
	if c.onDone != nil {
		c.onDone()
	}
}

func (c *CPUCore) exec(op Op) {
	c.curOp = op
	switch op.Kind {
	case OpCompute:
		c.resVal = 0
		c.eng.Schedule(sim.CPUCycles(uint64(op.Cycles)), c.advance)

	case OpFence:
		if c.obs != nil {
			c.curOp.Trace = c.obs.NextTrace()
			c.obs.Emit(obs.Event{At: c.eng.Now(), Kind: obs.EvOpIssue,
				Node: c.node, Trace: c.curOp.Trace, Class: obs.ClassFence})
		}
		if op.Rel {
			c.l1.Flush(c.fenceEnd)
		} else {
			c.onFenceEnd()
		}

	case OpLoad, OpStore, OpAtomic:
		if c.obs != nil {
			c.curOp.Trace = c.obs.NextTrace()
			c.obs.Emit(obs.Event{At: c.eng.Now(), Kind: obs.EvOpIssue,
				Node: c.node, Trace: c.curOp.Trace, Class: obsClassOf(op.Kind),
				Addr: op.Addr})
		}
		// Release semantics: drain buffered stores and pending ownership
		// before the releasing operation issues (paper §III-E).
		if op.Rel {
			c.l1.Flush(c.issueFn)
		} else {
			c.issueMem()
		}

	default:
		panic(fmt.Sprintf("device: unknown op kind %v", op.Kind))
	}
}

// onFenceEnd completes the in-flight fence (after the release drain, when
// one was required).
func (c *CPUCore) onFenceEnd() {
	if c.curOp.Acq {
		AcquireInvalidate(c.l1, c.curOp)
	}
	if c.obs != nil {
		c.obs.Emit(obs.Event{At: c.eng.Now(), Kind: obs.EvOpDone,
			Node: c.node, Trace: c.curOp.Trace, Class: obs.ClassFence})
	}
	c.resVal = 0
	c.eng.Schedule(c.IssueCost, c.advance)
}

func (c *CPUCore) issueMem() {
	if !c.l1.Access(c.curOp, c.memDone) {
		// Structural stall: retry next cycle.
		c.eng.Schedule(sim.CPUCycle, c.retryFn)
	}
}

// onMemDone completes the in-flight memory operation.
func (c *CPUCore) onMemDone(value uint32) {
	op := c.curOp
	if c.obs != nil {
		c.obs.Emit(obs.Event{At: c.eng.Now(), Kind: obs.EvOpDone,
			Node: c.node, Trace: op.Trace, Class: obsClassOf(op.Kind),
			Addr: op.Addr})
	}
	if op.Acq {
		// Acquire: self-invalidate before any subsequent access can
		// read stale Valid data. Modeled as a single-cycle flash
		// (paper §IV-A), charged as part of the issue cost; a region
		// hint narrows the flash on caches that support it.
		AcquireInvalidate(c.l1, op)
	}
	c.resVal = value
	c.eng.Schedule(c.IssueCost, c.advance)
}
