package device

import (
	"fmt"

	"spandex/internal/obs"
	"spandex/internal/proto"
	"spandex/internal/sim"
)

// obsClassOf maps an operation kind to its observability class.
func obsClassOf(k OpKind) obs.OpClass {
	switch k {
	case OpLoad:
		return obs.ClassLoad
	case OpStore:
		return obs.ClassStore
	case OpAtomic:
		return obs.ClassAtomic
	case OpFence:
		return obs.ClassFence
	default:
		panic("obsClassOf: not a traced operation kind")
	}
}

// CPUCore is an in-order, latency-sensitive core (paper §II-A): loads and
// atomics block the core until they complete; stores retire into the L1's
// store buffer; synchronization drains the buffer (release) and
// self-invalidates stale data (acquire, protocol-permitting).
type CPUCore struct {
	Name   string
	eng    *sim.Engine
	l1     L1Cache
	stream OpStream
	onDone func()

	// IssueCost is the fixed per-operation pipeline cost.
	IssueCost sim.Time

	obs  *obs.Recorder
	node proto.NodeID

	ops      uint64
	finished bool
}

// SetObserver installs the observability recorder; node is the core's
// network endpoint id (its L1's node), the origin of its requests. The
// core assigns a trace id to every memory operation and fence, emitting
// EvOpIssue/EvOpDone around its lifetime.
func (c *CPUCore) SetObserver(r *obs.Recorder, node proto.NodeID) {
	c.obs = r
	c.node = node
}

// NewCPUCore creates a core executing stream against l1. onDone fires when
// the stream is exhausted and the final operation has completed.
func NewCPUCore(name string, eng *sim.Engine, l1 L1Cache, stream OpStream, onDone func()) *CPUCore {
	return &CPUCore{Name: name, eng: eng, l1: l1, stream: stream,
		onDone: onDone, IssueCost: sim.CPUCycle}
}

// Start begins execution (call once, before running the engine).
func (c *CPUCore) Start() {
	c.eng.Schedule(0, func() { c.next(OpResult{}) })
}

// Ops reports how many operations the core has completed.
func (c *CPUCore) Ops() uint64 { return c.ops }

// Finished reports whether the stream has been fully executed.
func (c *CPUCore) Finished() bool { return c.finished }

func (c *CPUCore) next(prev OpResult) {
	op, ok := c.stream.Next(prev)
	if !ok {
		// Drain buffered stores before retiring: lazily coalesced writes
		// must reach the memory system.
		c.l1.Flush(func() {
			c.finished = true
			if c.onDone != nil {
				c.onDone()
			}
		})
		return
	}
	c.ops++
	c.exec(op)
}

func (c *CPUCore) exec(op Op) {
	switch op.Kind {
	case OpCompute:
		c.eng.Schedule(sim.CPUCycles(uint64(op.Cycles)), func() {
			c.next(OpResult{Valid: true})
		})

	case OpFence:
		if c.obs != nil {
			op.Trace = c.obs.NextTrace()
			c.obs.Emit(obs.Event{At: c.eng.Now(), Kind: obs.EvOpIssue,
				Node: c.node, Trace: op.Trace, Class: obs.ClassFence})
		}
		finish := func() {
			if op.Acq {
				AcquireInvalidate(c.l1, op)
			}
			if c.obs != nil {
				c.obs.Emit(obs.Event{At: c.eng.Now(), Kind: obs.EvOpDone,
					Node: c.node, Trace: op.Trace, Class: obs.ClassFence})
			}
			c.eng.Schedule(c.IssueCost, func() { c.next(OpResult{Valid: true}) })
		}
		if op.Rel {
			c.l1.Flush(finish)
		} else {
			finish()
		}

	case OpLoad, OpStore, OpAtomic:
		if c.obs != nil {
			op.Trace = c.obs.NextTrace()
			c.obs.Emit(obs.Event{At: c.eng.Now(), Kind: obs.EvOpIssue,
				Node: c.node, Trace: op.Trace, Class: obsClassOf(op.Kind),
				Addr: op.Addr})
		}
		issue := func() { c.issueMem(op) }
		// Release semantics: drain buffered stores and pending ownership
		// before the releasing operation issues (paper §III-E).
		if op.Rel {
			c.l1.Flush(issue)
		} else {
			issue()
		}

	default:
		panic(fmt.Sprintf("device: unknown op kind %v", op.Kind))
	}
}

func (c *CPUCore) issueMem(op Op) {
	accepted := c.l1.Access(op, func(value uint32) {
		if c.obs != nil {
			c.obs.Emit(obs.Event{At: c.eng.Now(), Kind: obs.EvOpDone,
				Node: c.node, Trace: op.Trace, Class: obsClassOf(op.Kind),
				Addr: op.Addr})
		}
		if op.Acq {
			// Acquire: self-invalidate before any subsequent access can
			// read stale Valid data. Modeled as a single-cycle flash
			// (paper §IV-A), charged as part of the issue cost; a region
			// hint narrows the flash on caches that support it.
			AcquireInvalidate(c.l1, op)
		}
		c.eng.Schedule(c.IssueCost, func() {
			c.next(OpResult{Valid: true, Value: value})
		})
	})
	if !accepted {
		// Structural stall: retry next cycle.
		c.eng.Schedule(sim.CPUCycle, func() { c.issueMem(op) })
	}
}
