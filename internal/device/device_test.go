package device

import (
	"testing"

	"spandex/internal/memaddr"
	"spandex/internal/proto"
	"spandex/internal/sim"
)

// fakeL1 is a scriptable L1 for device-model tests.
type fakeL1 struct {
	eng       *sim.Engine
	loadLat   sim.Time
	values    map[memaddr.Addr]uint32
	invals    int
	flushes   int
	rejects   int // reject this many Accesses before accepting
	inflight  int
	accessLog []Op
}

func newFakeL1(eng *sim.Engine, loadLat sim.Time) *fakeL1 {
	return &fakeL1{eng: eng, loadLat: loadLat, values: map[memaddr.Addr]uint32{}}
}

func (f *fakeL1) Access(op Op, done func(uint32)) bool {
	if f.rejects > 0 {
		f.rejects--
		return false
	}
	f.accessLog = append(f.accessLog, op)
	switch op.Kind {
	case OpStore:
		f.values[op.Addr] = op.Value
		done(0)
	case OpLoad:
		f.inflight++
		v := f.values[op.Addr]
		f.eng.Schedule(f.loadLat, func() { f.inflight--; done(v) })
	case OpAtomic:
		f.inflight++
		old := f.values[op.Addr]
		nv, _ := op.Atomic.Apply(old, op.Value, op.Compare)
		f.values[op.Addr] = nv
		f.eng.Schedule(f.loadLat, func() { f.inflight--; done(old) })
	}
	return true
}

func (f *fakeL1) SelfInvalidate() { f.invals++ }
func (f *fakeL1) Flush(done func()) {
	f.flushes++
	done()
}

func TestCPUBlockingLoads(t *testing.T) {
	eng := sim.New()
	l1 := newFakeL1(eng, 100*sim.CPUCycle)
	ops := []Op{
		{Kind: OpLoad, Addr: 0x40},
		{Kind: OpLoad, Addr: 0x80},
	}
	done := false
	c := NewCPUCore("cpu0", eng, l1, &SliceStream{Ops: ops}, func() { done = true })
	c.Start()
	end := eng.Run()
	if !done || !c.Finished() {
		t.Fatal("core did not finish")
	}
	// Two fully serialized 100-cycle loads plus issue costs: ≥ 200 cycles.
	if end < 200*sim.CPUCycle {
		t.Fatalf("loads overlapped on an in-order core: end=%d", end)
	}
	if c.Ops() != 2 {
		t.Fatalf("ops = %d", c.Ops())
	}
}

func TestCPUStoreBufferedAndReleaseFlush(t *testing.T) {
	eng := sim.New()
	l1 := newFakeL1(eng, 10*sim.CPUCycle)
	ops := []Op{
		{Kind: OpStore, Addr: 0x40, Value: 1},
		{Kind: OpStore, Addr: 0x44, Value: 2},
		{Kind: OpAtomic, Addr: 0x80, Value: 7, Atomic: proto.AtomicExchange, Rel: true},
	}
	c := NewCPUCore("cpu0", eng, l1, &SliceStream{Ops: ops}, nil)
	c.Start()
	eng.Run()
	// One flush for the release, one draining the buffer at end-of-stream.
	if l1.flushes != 2 {
		t.Fatalf("flushes = %d, want 2 (release + retire)", l1.flushes)
	}
	// The release flush must precede the releasing atomic in the log.
	last := l1.accessLog[len(l1.accessLog)-1]
	if last.Kind != OpAtomic {
		t.Fatalf("atomic not last: %v", l1.accessLog)
	}
}

func TestCPUAcquireSelfInvalidates(t *testing.T) {
	eng := sim.New()
	l1 := newFakeL1(eng, sim.CPUCycle)
	ops := []Op{{Kind: OpAtomic, Addr: 0x40, Atomic: proto.AtomicRead, Acq: true}}
	NewCPUCore("cpu0", eng, l1, &SliceStream{Ops: ops}, nil).Start()
	eng.Run()
	if l1.invals != 1 {
		t.Fatalf("invals = %d, want 1", l1.invals)
	}
}

func TestCPUStallRetry(t *testing.T) {
	eng := sim.New()
	l1 := newFakeL1(eng, sim.CPUCycle)
	l1.rejects = 3
	done := false
	NewCPUCore("cpu0", eng, l1, &SliceStream{Ops: []Op{{Kind: OpLoad, Addr: 0}}}, func() { done = true }).Start()
	eng.Run()
	if !done {
		t.Fatal("core never completed after stalls")
	}
}

func TestCPUDataDependentStream(t *testing.T) {
	eng := sim.New()
	l1 := newFakeL1(eng, sim.CPUCycle)
	l1.values[0x100] = 5
	var seen []uint32
	n := 0
	stream := FuncStream(func(prev OpResult) (Op, bool) {
		if prev.Valid {
			seen = append(seen, prev.Value)
		}
		if n >= 3 {
			return Op{}, false
		}
		n++
		// Chase: load addr derived from previous value.
		base := memaddr.Addr(0x100)
		if prev.Valid {
			base = memaddr.Addr(0x100 + prev.Value*4)
		}
		return Op{Kind: OpLoad, Addr: base}, true
	})
	l1.values[0x100+5*4] = 9
	NewCPUCore("cpu0", eng, l1, stream, nil).Start()
	eng.Run()
	if len(seen) != 3 || seen[0] != 5 || seen[1] != 9 {
		t.Fatalf("seen = %v", seen)
	}
}

func TestGPULatencyHiding(t *testing.T) {
	// 4 warps × 4 dependent loads of 200 GPU cycles each. A blocking core
	// would take ~3200 cycles; warp interleaving should approach ~800+ε.
	eng := sim.New()
	l1 := newFakeL1(eng, 200*sim.GPUCycle)
	mk := func(w int) OpStream {
		var ops []Op
		for i := 0; i < 4; i++ {
			ops = append(ops, Op{Kind: OpLoad, Addr: memaddr.Addr(w*0x1000 + i*64)})
		}
		return &SliceStream{Ops: ops}
	}
	cu := NewGPUCU("cu0", eng, l1, []OpStream{mk(0), mk(1), mk(2), mk(3)}, nil)
	cu.Start()
	end := eng.Run()
	serial := 16 * 200 * uint64(sim.GPUCycle)
	if uint64(end) > serial*40/100 {
		t.Fatalf("no latency hiding: end=%d, serial=%d", end, serial)
	}
	if cu.Ops() != 16 {
		t.Fatalf("ops = %d", cu.Ops())
	}
}

func TestGPUIssueRateOnePerCycle(t *testing.T) {
	// With zero-latency memory, N independent ops across warps issue at
	// most one per GPU cycle.
	eng := sim.New()
	l1 := newFakeL1(eng, 0)
	var streams []OpStream
	for w := 0; w < 4; w++ {
		var ops []Op
		for i := 0; i < 10; i++ {
			ops = append(ops, Op{Kind: OpStore, Addr: memaddr.Addr(i * 4), Value: 1})
		}
		streams = append(streams, &SliceStream{Ops: ops})
	}
	cu := NewGPUCU("cu0", eng, l1, streams, nil)
	cu.Start()
	end := eng.Run()
	if uint64(end) < 39*uint64(sim.GPUCycle) {
		t.Fatalf("issued faster than 1/cycle: end=%d", end)
	}
}

func TestGPURejectionDoesNotLoseOps(t *testing.T) {
	eng := sim.New()
	l1 := newFakeL1(eng, sim.GPUCycle)
	l1.rejects = 5
	finished := false
	cu := NewGPUCU("cu0", eng, l1,
		[]OpStream{&SliceStream{Ops: []Op{{Kind: OpLoad, Addr: 0}, {Kind: OpLoad, Addr: 64}}}},
		func() { finished = true })
	cu.Start()
	eng.Run()
	if !finished {
		t.Fatal("CU lost an op after rejection")
	}
	if len(l1.accessLog) != 2 {
		t.Fatalf("accesses = %d", len(l1.accessLog))
	}
}

func TestCPUComputeAdvancesTime(t *testing.T) {
	eng := sim.New()
	l1 := newFakeL1(eng, 0)
	NewCPUCore("cpu0", eng, l1, &SliceStream{Ops: []Op{
		{Kind: OpCompute, Cycles: 100},
		{Kind: OpCompute, Cycles: 50},
	}}, nil).Start()
	end := eng.Run()
	if end < 150*sim.CPUCycle {
		t.Fatalf("compute under-charged: %d", end)
	}
}

func TestFenceAcquireOnlyInvalidates(t *testing.T) {
	eng := sim.New()
	l1 := newFakeL1(eng, sim.CPUCycle)
	NewCPUCore("cpu0", eng, l1, &SliceStream{Ops: []Op{
		{Kind: OpFence, Acq: true},
	}}, nil).Start()
	eng.Run()
	if l1.invals != 1 {
		t.Fatalf("invals = %d", l1.invals)
	}
	// End-of-stream flush still happens; acquire-only fence must not flush.
	if l1.flushes != 1 {
		t.Fatalf("flushes = %d, want 1 (retire only)", l1.flushes)
	}
}

// regionFake records region invalidations.
type regionFake struct {
	fakeL1
	regions [][2]memaddr.Addr
}

func (f *regionFake) SelfInvalidateRegion(lo, hi memaddr.Addr) {
	f.regions = append(f.regions, [2]memaddr.Addr{lo, hi})
}

func TestAcquireRegionRouting(t *testing.T) {
	eng := sim.New()
	f := &regionFake{fakeL1: *newFakeL1(eng, sim.CPUCycle)}
	ops := []Op{
		{Kind: OpAtomic, Addr: 0x40, Atomic: proto.AtomicRead, Acq: true,
			RegionLo: 0x1000, RegionHi: 0x2000},
		{Kind: OpAtomic, Addr: 0x40, Atomic: proto.AtomicRead, Acq: true},
	}
	NewCPUCore("cpu0", eng, f, &SliceStream{Ops: ops}, nil).Start()
	eng.Run()
	if len(f.regions) != 1 || f.regions[0] != [2]memaddr.Addr{0x1000, 0x2000} {
		t.Fatalf("regions = %v", f.regions)
	}
	if f.invals != 1 {
		t.Fatalf("full invals = %d, want 1 (region acquire must not flash)", f.invals)
	}
	// A cache without region support gets a full flash for both.
	eng2 := sim.New()
	plain := newFakeL1(eng2, sim.CPUCycle)
	NewCPUCore("cpu1", eng2, plain, &SliceStream{Ops: ops}, nil).Start()
	eng2.Run()
	if plain.invals != 2 {
		t.Fatalf("plain invals = %d, want 2", plain.invals)
	}
}

func TestByteMergeRewrite(t *testing.T) {
	op := Op{Kind: OpStore, Addr: 0x44, Value: 0xAB00, ByteMask: 0b0010}
	if !op.IsSubWordStore() {
		t.Fatal("not detected as sub-word")
	}
	bm := op.AsByteMerge()
	if bm.Kind != OpAtomic || bm.Atomic != proto.AtomicByteMerge {
		t.Fatalf("rewrite = %+v", bm)
	}
	if bm.Compare != 0x0000FF00 || bm.Value != 0xAB00 {
		t.Fatalf("lanes = %#x value = %#x", bm.Compare, bm.Value)
	}
	nv, _ := bm.Atomic.Apply(0x11223344, bm.Value, bm.Compare)
	if nv != 0x1122AB44 {
		t.Fatalf("merge = %#x", nv)
	}
	full := Op{Kind: OpStore, ByteMask: 0xF}
	if full.IsSubWordStore() {
		t.Fatal("full-word store misdetected")
	}
}

func TestGPUWarpFairnessUnderRejection(t *testing.T) {
	// Warp 0's op is rejected repeatedly; warp 1 must still make progress.
	eng := sim.New()
	l1 := newFakeL1(eng, sim.GPUCycle)
	l1.rejects = 20
	done1 := false
	s0 := &SliceStream{Ops: []Op{{Kind: OpLoad, Addr: 0}}}
	s1 := FuncStream(func(prev OpResult) (Op, bool) {
		if prev.Valid {
			done1 = true
			return Op{}, false
		}
		return Op{Kind: OpLoad, Addr: 64}, true
	})
	cu := NewGPUCU("cu0", eng, l1, []OpStream{s0, s1}, nil)
	cu.Start()
	eng.Run()
	if !done1 || !cu.Finished() {
		t.Fatal("rejections starved the sibling warp")
	}
}

func TestGPUEmptyCU(t *testing.T) {
	eng := sim.New()
	fin := false
	cu := NewGPUCU("cu0", eng, newFakeL1(eng, 0), nil, func() { fin = true })
	cu.Start()
	eng.Run()
	if !fin || !cu.Finished() {
		t.Fatal("empty CU must finish immediately")
	}
}
