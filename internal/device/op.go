// Package device models the compute devices that drive the memory system:
// latency-sensitive in-order CPU cores and latency-tolerant multi-warp GPU
// compute units. Devices execute OpStreams — dynamic per-thread programs of
// memory operations — against an L1 cache controller through the L1Cache
// interface. The protocols behind that interface are what the paper
// evaluates; the devices themselves only reproduce the issue behaviour
// (blocking loads and store buffering on CPUs, warp-interleaved latency
// hiding on GPUs).
package device

import (
	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

// OpKind is the kind of one device operation.
type OpKind uint8

const (
	// OpLoad reads a word.
	OpLoad OpKind = iota
	// OpStore writes a word. Stores complete into the store/write buffer;
	// release fences drain them.
	OpStore
	// OpAtomic performs a read-modify-write (or atomic read) on a word.
	OpAtomic
	// OpCompute advances local time by Cycles device cycles without
	// touching memory.
	OpCompute
	// OpFence orders prior and later operations per its Acq/Rel flags
	// without accessing memory.
	OpFence
)

func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpAtomic:
		return "atomic"
	case OpCompute:
		return "compute"
	case OpFence:
		return "fence"
	}
	return "op?"
}

// Op is one operation in a thread's program.
type Op struct {
	Kind OpKind
	Addr memaddr.Addr

	// Value is the store value or atomic operand.
	Value uint32
	// Atomic selects the RMW operation for OpAtomic.
	Atomic proto.AtomicKind
	// Compare is the expected value for AtomicCAS.
	Compare uint32
	// Cycles is the duration of an OpCompute in device cycles.
	Cycles uint32

	// Acq gives the operation acquire semantics: after it completes, the
	// device self-invalidates potentially stale Valid data (a no-op for
	// writer-invalidated caches). Rel gives release semantics: the store
	// buffer and pending ownership requests drain before it issues
	// (paper §III-E).
	Acq bool
	Rel bool

	// ByteMask selects the byte lanes an OpStore writes (bit i = byte i).
	// Zero or 0xF means a full-word store; anything else is a
	// byte-granularity store, which the protocols must perform as a
	// word-granularity read-modify-write so unmodified bytes stay
	// up-to-date (paper §III-B). Value must carry the bytes already
	// positioned in their lanes.
	ByteMask uint8

	// RegionLo/RegionHi restrict an acquire's self-invalidation to
	// [RegionLo, RegionHi) when the cache supports region tracking —
	// DeNovo's "regions" optimization ("selectively invalidating only
	// potentially stale data based on information from software", paper
	// §II-C). Zero values mean a full flash. Caches without region
	// support ignore the hint and flash everything.
	RegionLo Addr
	RegionHi Addr

	// Trace is the observability request id (internal/obs) assigned when
	// the device issues the operation, or zero when tracing is off. Pure
	// metadata: protocols copy it into outgoing messages but never branch
	// on it.
	Trace uint64
}

// Addr re-exports the address type for Op fields.
type Addr = memaddr.Addr

// RegionInvalidator is implemented by caches supporting DeNovo regions:
// acquire-time self-invalidation restricted to an address range.
type RegionInvalidator interface {
	SelfInvalidateRegion(lo, hi Addr)
}

// IsSubWordStore reports whether op writes only part of a word.
func (op Op) IsSubWordStore() bool {
	return op.Kind == OpStore && op.ByteMask != 0 && op.ByteMask != 0xF
}

// AsByteMerge rewrites a sub-word store as the word-granularity
// read-modify-write the paper mandates for byte stores (§III-B).
func (op Op) AsByteMerge() Op {
	var lanes uint32
	for i := 0; i < 4; i++ {
		if op.ByteMask&(1<<i) != 0 {
			lanes |= 0xFF << (8 * i)
		}
	}
	return Op{
		Kind: OpAtomic, Addr: op.Addr,
		Atomic: proto.AtomicByteMerge,
		Value:  op.Value, Compare: lanes,
		Acq: op.Acq, Rel: op.Rel,
		RegionLo: op.RegionLo, RegionHi: op.RegionHi,
		Trace: op.Trace,
	}
}

// AcquireInvalidate performs the acquire-time invalidation for op against
// l1, honoring a region hint when both sides support it.
func AcquireInvalidate(l1 L1Cache, op Op) {
	if op.RegionHi > op.RegionLo {
		if ri, ok := l1.(RegionInvalidator); ok {
			ri.SelfInvalidateRegion(op.RegionLo, op.RegionHi)
			return
		}
	}
	l1.SelfInvalidate()
}

// OpResult carries the completed operation's outcome back into the stream
// generator, letting programs make data-dependent decisions (queue pops,
// flag spins, work stealing).
type OpResult struct {
	// Valid is false for the first call to Next (no prior operation).
	Valid bool
	// Value is the loaded value or the atomic's pre-update value.
	Value uint32
}

// OpStream is a dynamic program: a state machine emitting one operation at
// a time, fed the result of the previous operation.
type OpStream interface {
	Next(prev OpResult) (Op, bool)
}

// SliceStream adapts a fixed []Op into an OpStream.
type SliceStream struct {
	Ops []Op
	pos int
}

// Next implements OpStream.
func (s *SliceStream) Next(OpResult) (Op, bool) {
	if s.pos >= len(s.Ops) {
		return Op{}, false
	}
	op := s.Ops[s.pos]
	s.pos++
	return op, true
}

// FuncStream adapts a function into an OpStream.
type FuncStream func(prev OpResult) (Op, bool)

// Next implements OpStream.
func (f FuncStream) Next(prev OpResult) (Op, bool) { return f(prev) }

// L1Cache is the device-facing interface every L1 protocol controller
// implements.
type L1Cache interface {
	// Access issues op. It returns false if the controller cannot accept
	// the operation right now (MSHR or store buffer full); the device
	// retries next cycle. When accepted, done is eventually called with
	// the result value (stores call it when buffered).
	Access(op Op, done func(value uint32)) bool

	// SelfInvalidate flash-invalidates potentially stale Valid data
	// (acquire action; single-cycle, paper §IV-A). Writer-invalidated
	// (MESI) caches treat it as a no-op.
	SelfInvalidate()

	// Flush completes all buffered stores and pending ownership/write-
	// through requests, then calls done (release action).
	Flush(done func())
}
