// Package config defines the six evaluated cache configurations (paper
// Table V) and the simulated system parameters (paper Table VI).
package config

import (
	"fmt"

	"spandex/internal/memaddr"
	"spandex/internal/sim"
)

// LLCKind selects the last-level organization.
type LLCKind uint8

const (
	// LLCSpandex is the flat Spandex LLC (this paper's design).
	LLCSpandex LLCKind = iota
	// LLCHierarchicalMESI is the baseline: MESI L3 directory with an
	// intermediate GPU L2.
	LLCHierarchicalMESI
)

func (k LLCKind) String() string {
	if k == LLCSpandex {
		return "Spandex"
	}
	return "H-MESI"
}

// CPUProto selects the CPU L1 protocol.
type CPUProto uint8

const (
	CPUMESI CPUProto = iota
	CPUDeNovo
)

func (p CPUProto) String() string {
	if p == CPUMESI {
		return "MESI"
	}
	return "DeNovo"
}

// GPUProto selects the GPU L1 protocol.
type GPUProto uint8

const (
	GPUCoherence GPUProto = iota
	GPUDeNovo
)

func (p GPUProto) String() string {
	if p == GPUCoherence {
		return "GPU coherence"
	}
	return "DeNovo"
}

// CacheConfig is one row of Table V.
type CacheConfig struct {
	Name string
	LLC  LLCKind
	CPU  CPUProto
	GPU  GPUProto
}

// TableV returns the six evaluated configurations (paper Table V). The
// hierarchical MESI LLC only supports MESI CPU caches; Spandex supports
// MESI or DeNovo CPU caches and GPU coherence or DeNovo GPU caches.
func TableV() []CacheConfig {
	return []CacheConfig{
		{"HMG", LLCHierarchicalMESI, CPUMESI, GPUCoherence},
		{"HMD", LLCHierarchicalMESI, CPUMESI, GPUDeNovo},
		{"SMG", LLCSpandex, CPUMESI, GPUCoherence},
		{"SMD", LLCSpandex, CPUMESI, GPUDeNovo},
		{"SDG", LLCSpandex, CPUDeNovo, GPUCoherence},
		{"SDD", LLCSpandex, CPUDeNovo, GPUDeNovo},
	}
}

// ByName returns the named Table V configuration.
func ByName(name string) (CacheConfig, error) {
	for _, c := range TableV() {
		if c.Name == name {
			return c, nil
		}
	}
	return CacheConfig{}, fmt.Errorf("config: unknown configuration %q", name)
}

// DeviceClass names the kind of requestor a DeviceSpec instantiates. The
// L1 protocol each class speaks still comes from the CacheConfig (Table V
// column): every CPU-class device gets the configured CPU protocol, every
// GPU-class device the configured GPU protocol.
type DeviceClass uint8

const (
	// ClassCPU is a latency-sensitive core running one hardware thread.
	ClassCPU DeviceClass = iota
	// ClassGPU is a throughput CU running WarpsPerCU interleaved warps.
	ClassGPU
)

func (c DeviceClass) String() string {
	if c == ClassCPU {
		return "cpu"
	}
	return "gpu"
}

// DeviceSpec is one homogeneous group of requestor devices. A system's
// device list is a sequence of specs; NodeIDs are assigned in list order,
// so [{CPU,8},{GPU,16}] reproduces the paper's fixed layout exactly.
type DeviceSpec struct {
	Class DeviceClass
	Count int
}

// NoCTopology selects the interconnect model (see internal/noc).
type NoCTopology uint8

const (
	// TopoDirect is the legacy point-to-point model: distance-dependent
	// latency with per-endpoint link serialization only. The paper's 9×6
	// evaluation matrix runs on this model; its results are bit-stable.
	TopoDirect NoCTopology = iota
	// TopoMesh is a switched 2D mesh: XY (dimension-ordered) routing with
	// per-link occupancy, so through-traffic contends at every hop.
	TopoMesh
	// TopoRing is a switched bidirectional ring: shortest-direction
	// routing with per-link occupancy.
	TopoRing
)

func (t NoCTopology) String() string {
	switch t {
	case TopoDirect:
		return "direct"
	case TopoMesh:
		return "mesh"
	case TopoRing:
		return "ring"
	}
	return fmt.Sprintf("NoCTopology(%d)", uint8(t))
}

// SystemParams mirrors the paper's Table VI. The published table's latency
// values were corrupted in the source text, so representative 2018-era
// values are used; only their ratios matter for the normalized results the
// paper reports (see DESIGN.md §2).
type SystemParams struct {
	CPUCores   int
	GPUCUs     int
	WarpsPerCU int

	// Devices generalizes the fixed CPUCores+GPUCUs pair to an arbitrary
	// requestor list. When nil (every legacy configuration), the list is
	// exactly [{ClassCPU, CPUCores}, {ClassGPU, GPUCUs}] — byte-identical
	// behaviour to the pre-N-device simulator. When non-nil it wins and
	// CPUCores/GPUCUs are ignored.
	Devices []DeviceSpec

	// LLCBanks shards the Spandex LLC into an address-interleaved array of
	// banks, each with its own directory, MSHRs and request queue on its
	// own NoC node. 0 or 1 means the paper's single flat LLC. Lines map to
	// banks with proto.BankOf; capacity is split evenly across banks. The
	// hierarchical baseline is never banked.
	LLCBanks int

	// Topology selects the interconnect model. TopoDirect (zero value) is
	// the legacy point-to-point model every paper figure uses.
	Topology NoCTopology

	// L1 geometry (both CPU and GPU, paper: 32 KB, 8 banks, 8-way).
	L1SizeBytes int
	L1Ways      int

	// Spandex LLC: 8 MB; hierarchical: 4 MB GPU L2 + 8 MB L3.
	SpandexLLCBytes int
	SpandexLLCWays  int
	GPUL2Bytes      int
	GPUL2Ways       int
	L3Bytes         int
	L3Ways          int

	StoreBufferEntries int
	MSHREntries        int

	// Latencies, in CPU cycles unless noted.
	L1HitCPUCycles   uint64 // applied in the device's own clock domain
	L2HitCycles      uint64
	L3HitCycles      uint64
	MemLatencyCycles uint64
	TULatencyCycles  uint64

	// Interconnect.
	NoCHopCycles   uint64
	NoCBytesPerCyc int
	NoCMeshWidth   int
}

// DefaultParams returns the Table VI configuration.
func DefaultParams() SystemParams {
	return SystemParams{
		CPUCores:   8,
		GPUCUs:     16,
		WarpsPerCU: 4,

		L1SizeBytes: 32 * 1024,
		L1Ways:      8,

		SpandexLLCBytes: 8 * 1024 * 1024,
		SpandexLLCWays:  16,
		GPUL2Bytes:      4 * 1024 * 1024,
		GPUL2Ways:       16,
		L3Bytes:         8 * 1024 * 1024,
		L3Ways:          16,

		StoreBufferEntries: 128,
		MSHREntries:        128,

		L1HitCPUCycles:   1,
		L2HitCycles:      24,
		L3HitCycles:      48,
		MemLatencyCycles: 160,
		TULatencyCycles:  1,

		NoCHopCycles:   2,
		NoCBytesPerCyc: 32,
		NoCMeshWidth:   6,
	}
}

// FastParams shrinks the system for unit tests: fewer cores, small caches.
func FastParams() SystemParams {
	p := DefaultParams()
	p.CPUCores = 2
	p.GPUCUs = 2
	p.WarpsPerCU = 2
	p.SpandexLLCBytes = 256 * 1024
	p.GPUL2Bytes = 128 * 1024
	p.L3Bytes = 256 * 1024
	return p
}

// DeviceList resolves the effective device list: Devices when set,
// otherwise the legacy [{CPU, CPUCores}, {GPU, GPUCUs}] pair.
func (p SystemParams) DeviceList() []DeviceSpec {
	if len(p.Devices) > 0 {
		return p.Devices
	}
	return []DeviceSpec{{ClassCPU, p.CPUCores}, {ClassGPU, p.GPUCUs}}
}

// NumCPUs counts CPU-class devices across the effective device list.
func (p SystemParams) NumCPUs() int { return p.countClass(ClassCPU) }

// NumGPUs counts GPU-class devices across the effective device list.
func (p SystemParams) NumGPUs() int { return p.countClass(ClassGPU) }

func (p SystemParams) countClass(c DeviceClass) int {
	n := 0
	for _, d := range p.DeviceList() {
		if d.Class == c {
			n += d.Count
		}
	}
	return n
}

// NumDevices counts every requestor device.
func (p SystemParams) NumDevices() int {
	n := 0
	for _, d := range p.DeviceList() {
		n += d.Count
	}
	return n
}

// Banks returns the effective Spandex LLC bank count (at least 1).
func (p SystemParams) Banks() int {
	if p.LLCBanks <= 1 {
		return 1
	}
	return p.LLCBanks
}

// Validate rejects inconsistent parameter combinations before a System is
// assembled from them.
func (p SystemParams) Validate() error {
	for i, d := range p.DeviceList() {
		if d.Count < 0 {
			return fmt.Errorf("config: device spec %d has negative count %d", i, d.Count)
		}
		if d.Class != ClassCPU && d.Class != ClassGPU {
			return fmt.Errorf("config: device spec %d has unknown class %d", i, d.Class)
		}
	}
	if p.NumDevices() == 0 {
		return fmt.Errorf("config: no requestor devices")
	}
	if n := p.NumDevices(); n > 64 {
		return fmt.Errorf("config: %d requestor devices exceed the 64-device directory sharer-bitset cap", n)
	}
	if p.LLCBanks < 0 {
		return fmt.Errorf("config: negative LLC bank count %d", p.LLCBanks)
	}
	if banks := p.Banks(); p.SpandexLLCBytes/banks < memaddr.LineBytes*p.SpandexLLCWays {
		return fmt.Errorf("config: %d LLC banks leave under one set per bank (%d bytes / bank, %d ways)",
			banks, p.SpandexLLCBytes/banks, p.SpandexLLCWays)
	}
	if p.Topology > TopoRing {
		return fmt.Errorf("config: unknown NoC topology %d", p.Topology)
	}
	return nil
}

// ScaleParams builds a scaled system: nCPU CPU-class and nGPU GPU-class
// requestors on a 2D-mesh NoC over a bank-sharded LLC. Bank count defaults
// to one bank per 8 requestors (minimum 2 — a scaled system always
// exercises the distributed directory) when banks <= 0. Per-device cache
// geometry is kept small so very large device counts stay simulable.
func ScaleParams(nCPU, nGPU, banks int) SystemParams {
	p := DefaultParams()
	p.Devices = []DeviceSpec{{ClassCPU, nCPU}, {ClassGPU, nGPU}}
	p.CPUCores, p.GPUCUs = nCPU, nGPU // kept coherent for display only
	p.WarpsPerCU = 2
	if banks <= 0 {
		banks = (nCPU + nGPU) / 8
		if banks < 2 {
			banks = 2
		}
	}
	p.LLCBanks = banks
	p.Topology = TopoMesh
	// Mesh wide enough to keep the layout square-ish: devices + banks + mem.
	n := nCPU + nGPU + banks + 1
	w := 1
	for w*w < n {
		w++
	}
	p.NoCMeshWidth = w
	p.L1SizeBytes = 16 * 1024
	p.SpandexLLCBytes = 256 * 1024 * banks
	return p
}

// TUTicks converts the TU latency to ticks.
func (p SystemParams) TUTicks() sim.Time { return sim.CPUCycles(p.TULatencyCycles) }

// NoCTicksPerByte converts link bandwidth to serialization cost per byte.
func (p SystemParams) NoCTicksPerByte() sim.Time {
	return sim.Time(uint64(sim.CPUCycle) / uint64(p.NoCBytesPerCyc))
}
