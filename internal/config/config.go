// Package config defines the six evaluated cache configurations (paper
// Table V) and the simulated system parameters (paper Table VI).
package config

import (
	"fmt"

	"spandex/internal/sim"
)

// LLCKind selects the last-level organization.
type LLCKind uint8

const (
	// LLCSpandex is the flat Spandex LLC (this paper's design).
	LLCSpandex LLCKind = iota
	// LLCHierarchicalMESI is the baseline: MESI L3 directory with an
	// intermediate GPU L2.
	LLCHierarchicalMESI
)

func (k LLCKind) String() string {
	if k == LLCSpandex {
		return "Spandex"
	}
	return "H-MESI"
}

// CPUProto selects the CPU L1 protocol.
type CPUProto uint8

const (
	CPUMESI CPUProto = iota
	CPUDeNovo
)

func (p CPUProto) String() string {
	if p == CPUMESI {
		return "MESI"
	}
	return "DeNovo"
}

// GPUProto selects the GPU L1 protocol.
type GPUProto uint8

const (
	GPUCoherence GPUProto = iota
	GPUDeNovo
)

func (p GPUProto) String() string {
	if p == GPUCoherence {
		return "GPU coherence"
	}
	return "DeNovo"
}

// CacheConfig is one row of Table V.
type CacheConfig struct {
	Name string
	LLC  LLCKind
	CPU  CPUProto
	GPU  GPUProto
}

// TableV returns the six evaluated configurations (paper Table V). The
// hierarchical MESI LLC only supports MESI CPU caches; Spandex supports
// MESI or DeNovo CPU caches and GPU coherence or DeNovo GPU caches.
func TableV() []CacheConfig {
	return []CacheConfig{
		{"HMG", LLCHierarchicalMESI, CPUMESI, GPUCoherence},
		{"HMD", LLCHierarchicalMESI, CPUMESI, GPUDeNovo},
		{"SMG", LLCSpandex, CPUMESI, GPUCoherence},
		{"SMD", LLCSpandex, CPUMESI, GPUDeNovo},
		{"SDG", LLCSpandex, CPUDeNovo, GPUCoherence},
		{"SDD", LLCSpandex, CPUDeNovo, GPUDeNovo},
	}
}

// ByName returns the named Table V configuration.
func ByName(name string) (CacheConfig, error) {
	for _, c := range TableV() {
		if c.Name == name {
			return c, nil
		}
	}
	return CacheConfig{}, fmt.Errorf("config: unknown configuration %q", name)
}

// SystemParams mirrors the paper's Table VI. The published table's latency
// values were corrupted in the source text, so representative 2018-era
// values are used; only their ratios matter for the normalized results the
// paper reports (see DESIGN.md §2).
type SystemParams struct {
	CPUCores   int
	GPUCUs     int
	WarpsPerCU int

	// L1 geometry (both CPU and GPU, paper: 32 KB, 8 banks, 8-way).
	L1SizeBytes int
	L1Ways      int

	// Spandex LLC: 8 MB; hierarchical: 4 MB GPU L2 + 8 MB L3.
	SpandexLLCBytes int
	SpandexLLCWays  int
	GPUL2Bytes      int
	GPUL2Ways       int
	L3Bytes         int
	L3Ways          int

	StoreBufferEntries int
	MSHREntries        int

	// Latencies, in CPU cycles unless noted.
	L1HitCPUCycles   uint64 // applied in the device's own clock domain
	L2HitCycles      uint64
	L3HitCycles      uint64
	MemLatencyCycles uint64
	TULatencyCycles  uint64

	// Interconnect.
	NoCHopCycles   uint64
	NoCBytesPerCyc int
	NoCMeshWidth   int
}

// DefaultParams returns the Table VI configuration.
func DefaultParams() SystemParams {
	return SystemParams{
		CPUCores:   8,
		GPUCUs:     16,
		WarpsPerCU: 4,

		L1SizeBytes: 32 * 1024,
		L1Ways:      8,

		SpandexLLCBytes: 8 * 1024 * 1024,
		SpandexLLCWays:  16,
		GPUL2Bytes:      4 * 1024 * 1024,
		GPUL2Ways:       16,
		L3Bytes:         8 * 1024 * 1024,
		L3Ways:          16,

		StoreBufferEntries: 128,
		MSHREntries:        128,

		L1HitCPUCycles:   1,
		L2HitCycles:      24,
		L3HitCycles:      48,
		MemLatencyCycles: 160,
		TULatencyCycles:  1,

		NoCHopCycles:   2,
		NoCBytesPerCyc: 32,
		NoCMeshWidth:   6,
	}
}

// FastParams shrinks the system for unit tests: fewer cores, small caches.
func FastParams() SystemParams {
	p := DefaultParams()
	p.CPUCores = 2
	p.GPUCUs = 2
	p.WarpsPerCU = 2
	p.SpandexLLCBytes = 256 * 1024
	p.GPUL2Bytes = 128 * 1024
	p.L3Bytes = 256 * 1024
	return p
}

// TUTicks converts the TU latency to ticks.
func (p SystemParams) TUTicks() sim.Time { return sim.CPUCycles(p.TULatencyCycles) }

// NoCTicksPerByte converts link bandwidth to serialization cost per byte.
func (p SystemParams) NoCTicksPerByte() sim.Time {
	return sim.Time(uint64(sim.CPUCycle) / uint64(p.NoCBytesPerCyc))
}
