package config

import (
	"testing"

	"spandex/internal/sim"
)

func TestTableVShape(t *testing.T) {
	cfgs := TableV()
	if len(cfgs) != 6 {
		t.Fatalf("Table V has %d rows, want 6", len(cfgs))
	}
	wantNames := []string{"HMG", "HMD", "SMG", "SMD", "SDG", "SDD"}
	for i, c := range cfgs {
		if c.Name != wantNames[i] {
			t.Errorf("row %d = %s, want %s", i, c.Name, wantNames[i])
		}
	}
	// Naming convention: first letter = LLC, second = CPU, third = GPU.
	for _, c := range cfgs {
		wantLLC := LLCSpandex
		if c.Name[0] == 'H' {
			wantLLC = LLCHierarchicalMESI
		}
		if c.LLC != wantLLC {
			t.Errorf("%s: LLC %v", c.Name, c.LLC)
		}
		wantCPU := CPUDeNovo
		if c.Name[1] == 'M' {
			wantCPU = CPUMESI
		}
		if c.CPU != wantCPU {
			t.Errorf("%s: CPU %v", c.Name, c.CPU)
		}
		wantGPU := GPUDeNovo
		if c.Name[2] == 'G' {
			wantGPU = GPUCoherence
		}
		if c.GPU != wantGPU {
			t.Errorf("%s: GPU %v", c.Name, c.GPU)
		}
	}
	// The hierarchical baseline never pairs with a DeNovo CPU (§IV-A).
	for _, c := range cfgs {
		if c.LLC == LLCHierarchicalMESI && c.CPU != CPUMESI {
			t.Errorf("%s: hierarchical with non-MESI CPU", c.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, c := range TableV() {
		got, err := ByName(c.Name)
		if err != nil || got != c {
			t.Errorf("ByName(%s) = %+v, %v", c.Name, got, err)
		}
	}
	if _, err := ByName("XYZ"); err == nil {
		t.Error("ByName accepted a bogus name")
	}
}

func TestDefaultParamsMatchTableVI(t *testing.T) {
	p := DefaultParams()
	if p.CPUCores != 8 || p.GPUCUs != 16 {
		t.Errorf("core counts %d/%d, want 8/16", p.CPUCores, p.GPUCUs)
	}
	if p.L1SizeBytes != 32*1024 || p.L1Ways != 8 {
		t.Errorf("L1 geometry %d/%d", p.L1SizeBytes, p.L1Ways)
	}
	if p.SpandexLLCBytes != 8<<20 {
		t.Errorf("Spandex LLC %d, want 8MB", p.SpandexLLCBytes)
	}
	if p.GPUL2Bytes != 4<<20 || p.L3Bytes != 8<<20 {
		t.Errorf("hierarchical sizes %d/%d", p.GPUL2Bytes, p.L3Bytes)
	}
	if p.StoreBufferEntries != 128 || p.MSHREntries != 128 {
		t.Errorf("buffer entries %d/%d, want 128", p.StoreBufferEntries, p.MSHREntries)
	}
	// The flat LLC must not be slower than the hierarchy's L3 — the
	// paper's Table VI gives the 8MB Spandex LLC L2-class latency.
	if p.L2HitCycles >= p.L3HitCycles {
		t.Error("LLC latency ordering violated")
	}
}

func TestDerivedTimings(t *testing.T) {
	p := DefaultParams()
	if p.TUTicks() != sim.CPUCycles(p.TULatencyCycles) {
		t.Error("TUTicks mismatch")
	}
	// 32 B/cycle at a 500-tick cycle = ~15 ticks per byte.
	if got := p.NoCTicksPerByte(); got != sim.Time(500/32) {
		t.Errorf("NoCTicksPerByte = %d", got)
	}
}

func TestFastParamsSmaller(t *testing.T) {
	f, d := FastParams(), DefaultParams()
	if f.CPUCores >= d.CPUCores || f.GPUCUs >= d.GPUCUs {
		t.Error("FastParams not smaller in cores")
	}
	if f.SpandexLLCBytes >= d.SpandexLLCBytes {
		t.Error("FastParams not smaller in LLC")
	}
	// Still valid cache geometries (power-of-two sets).
	for _, size := range []int{f.SpandexLLCBytes, f.GPUL2Bytes, f.L3Bytes, f.L1SizeBytes} {
		sets := size / 64 / 16
		if sets > 0 && sets&(sets-1) != 0 {
			t.Errorf("size %d gives non-power-of-two sets", size)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if LLCSpandex.String() != "Spandex" || LLCHierarchicalMESI.String() != "H-MESI" {
		t.Error("LLCKind strings")
	}
	if CPUMESI.String() != "MESI" || CPUDeNovo.String() != "DeNovo" {
		t.Error("CPUProto strings")
	}
	if GPUCoherence.String() != "GPU coherence" || GPUDeNovo.String() != "DeNovo" {
		t.Error("GPUProto strings")
	}
}
