package config

import (
	"testing"

	"spandex/internal/sim"
)

func TestTableVShape(t *testing.T) {
	cfgs := TableV()
	if len(cfgs) != 6 {
		t.Fatalf("Table V has %d rows, want 6", len(cfgs))
	}
	wantNames := []string{"HMG", "HMD", "SMG", "SMD", "SDG", "SDD"}
	for i, c := range cfgs {
		if c.Name != wantNames[i] {
			t.Errorf("row %d = %s, want %s", i, c.Name, wantNames[i])
		}
	}
	// Naming convention: first letter = LLC, second = CPU, third = GPU.
	for _, c := range cfgs {
		wantLLC := LLCSpandex
		if c.Name[0] == 'H' {
			wantLLC = LLCHierarchicalMESI
		}
		if c.LLC != wantLLC {
			t.Errorf("%s: LLC %v", c.Name, c.LLC)
		}
		wantCPU := CPUDeNovo
		if c.Name[1] == 'M' {
			wantCPU = CPUMESI
		}
		if c.CPU != wantCPU {
			t.Errorf("%s: CPU %v", c.Name, c.CPU)
		}
		wantGPU := GPUDeNovo
		if c.Name[2] == 'G' {
			wantGPU = GPUCoherence
		}
		if c.GPU != wantGPU {
			t.Errorf("%s: GPU %v", c.Name, c.GPU)
		}
	}
	// The hierarchical baseline never pairs with a DeNovo CPU (§IV-A).
	for _, c := range cfgs {
		if c.LLC == LLCHierarchicalMESI && c.CPU != CPUMESI {
			t.Errorf("%s: hierarchical with non-MESI CPU", c.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, c := range TableV() {
		got, err := ByName(c.Name)
		if err != nil || got != c {
			t.Errorf("ByName(%s) = %+v, %v", c.Name, got, err)
		}
	}
	if _, err := ByName("XYZ"); err == nil {
		t.Error("ByName accepted a bogus name")
	}
}

func TestDefaultParamsMatchTableVI(t *testing.T) {
	p := DefaultParams()
	if p.CPUCores != 8 || p.GPUCUs != 16 {
		t.Errorf("core counts %d/%d, want 8/16", p.CPUCores, p.GPUCUs)
	}
	if p.L1SizeBytes != 32*1024 || p.L1Ways != 8 {
		t.Errorf("L1 geometry %d/%d", p.L1SizeBytes, p.L1Ways)
	}
	if p.SpandexLLCBytes != 8<<20 {
		t.Errorf("Spandex LLC %d, want 8MB", p.SpandexLLCBytes)
	}
	if p.GPUL2Bytes != 4<<20 || p.L3Bytes != 8<<20 {
		t.Errorf("hierarchical sizes %d/%d", p.GPUL2Bytes, p.L3Bytes)
	}
	if p.StoreBufferEntries != 128 || p.MSHREntries != 128 {
		t.Errorf("buffer entries %d/%d, want 128", p.StoreBufferEntries, p.MSHREntries)
	}
	// The flat LLC must not be slower than the hierarchy's L3 — the
	// paper's Table VI gives the 8MB Spandex LLC L2-class latency.
	if p.L2HitCycles >= p.L3HitCycles {
		t.Error("LLC latency ordering violated")
	}
}

func TestDerivedTimings(t *testing.T) {
	p := DefaultParams()
	if p.TUTicks() != sim.CPUCycles(p.TULatencyCycles) {
		t.Error("TUTicks mismatch")
	}
	// 32 B/cycle at a 500-tick cycle = ~15 ticks per byte.
	if got := p.NoCTicksPerByte(); got != sim.Time(500/32) {
		t.Errorf("NoCTicksPerByte = %d", got)
	}
}

func TestFastParamsSmaller(t *testing.T) {
	f, d := FastParams(), DefaultParams()
	if f.CPUCores >= d.CPUCores || f.GPUCUs >= d.GPUCUs {
		t.Error("FastParams not smaller in cores")
	}
	if f.SpandexLLCBytes >= d.SpandexLLCBytes {
		t.Error("FastParams not smaller in LLC")
	}
	// Still valid cache geometries (power-of-two sets).
	for _, size := range []int{f.SpandexLLCBytes, f.GPUL2Bytes, f.L3Bytes, f.L1SizeBytes} {
		sets := size / 64 / 16
		if sets > 0 && sets&(sets-1) != 0 {
			t.Errorf("size %d gives non-power-of-two sets", size)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if LLCSpandex.String() != "Spandex" || LLCHierarchicalMESI.String() != "H-MESI" {
		t.Error("LLCKind strings")
	}
	if CPUMESI.String() != "MESI" || CPUDeNovo.String() != "DeNovo" {
		t.Error("CPUProto strings")
	}
	if GPUCoherence.String() != "GPU coherence" || GPUDeNovo.String() != "DeNovo" {
		t.Error("GPUProto strings")
	}
}

func TestDeviceListLegacyShape(t *testing.T) {
	p := DefaultParams()
	list := p.DeviceList()
	want := []DeviceSpec{{ClassCPU, 8}, {ClassGPU, 16}}
	if len(list) != len(want) {
		t.Fatalf("legacy DeviceList has %d specs, want %d", len(list), len(want))
	}
	for i, d := range list {
		if d != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, d, want[i])
		}
	}
	if p.NumCPUs() != 8 || p.NumGPUs() != 16 || p.NumDevices() != 24 {
		t.Errorf("counts %d/%d/%d, want 8/16/24", p.NumCPUs(), p.NumGPUs(), p.NumDevices())
	}
}

func TestDeviceListOverrideWins(t *testing.T) {
	p := DefaultParams()
	p.Devices = []DeviceSpec{{ClassGPU, 4}, {ClassCPU, 2}, {ClassGPU, 1}}
	if p.NumCPUs() != 2 || p.NumGPUs() != 5 || p.NumDevices() != 7 {
		t.Errorf("counts %d/%d/%d, want 2/5/7", p.NumCPUs(), p.NumGPUs(), p.NumDevices())
	}
	// Interleaved specs keep list order: NodeID assignment depends on it.
	if got := p.DeviceList(); got[0].Class != ClassGPU || got[1].Class != ClassCPU {
		t.Errorf("DeviceList reordered: %+v", got)
	}
}

func TestBanksFloor(t *testing.T) {
	p := DefaultParams()
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {2, 2}, {8, 8}} {
		p.LLCBanks = tc.in
		if got := p.Banks(); got != tc.want {
			t.Errorf("Banks() with LLCBanks=%d = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	if err := FastParams().Validate(); err != nil {
		t.Errorf("fast params invalid: %v", err)
	}
	if err := ScaleParams(16, 48, 0).Validate(); err != nil {
		t.Errorf("64-requestor scale params invalid: %v", err)
	}

	bad := DefaultParams()
	bad.Devices = []DeviceSpec{{ClassCPU, -1}}
	if bad.Validate() == nil {
		t.Error("negative device count accepted")
	}

	bad = DefaultParams()
	bad.Devices = []DeviceSpec{{DeviceClass(9), 1}}
	if bad.Validate() == nil {
		t.Error("unknown device class accepted")
	}

	bad = DefaultParams()
	bad.Devices = []DeviceSpec{{ClassCPU, 0}, {ClassGPU, 0}}
	if bad.Validate() == nil {
		t.Error("empty system accepted")
	}

	// The directory's sharer bitsets are 64 bits wide: 65 requestors must
	// be rejected, 64 accepted.
	at := DefaultParams()
	at.Devices = []DeviceSpec{{ClassCPU, 16}, {ClassGPU, 48}}
	if err := at.Validate(); err != nil {
		t.Errorf("64 requestors rejected: %v", err)
	}
	over := DefaultParams()
	over.Devices = []DeviceSpec{{ClassCPU, 17}, {ClassGPU, 48}}
	if over.Validate() == nil {
		t.Error("65 requestors accepted past the sharer-bitset cap")
	}

	bad = DefaultParams()
	bad.LLCBanks = -2
	if bad.Validate() == nil {
		t.Error("negative bank count accepted")
	}

	// Banking must leave each bank at least one set.
	bad = DefaultParams()
	bad.SpandexLLCBytes = 2 * 1024
	bad.LLCBanks = 4
	if bad.Validate() == nil {
		t.Error("sub-set bank capacity accepted")
	}

	bad = DefaultParams()
	bad.Topology = NoCTopology(7)
	if bad.Validate() == nil {
		t.Error("unknown topology accepted")
	}
}

func TestScaleParamsGeometry(t *testing.T) {
	for _, tc := range []struct {
		nCPU, nGPU, banks int
		wantBanks         int
	}{
		{2, 6, 0, 2},     // 8 requestors: floor of 2 banks
		{4, 12, 0, 2},    // 16 requestors: 16/8 = 2
		{8, 24, 0, 4},    // 32 requestors: 32/8 = 4
		{16, 48, 0, 8},   // 64 requestors: 64/8 = 8
		{16, 48, 16, 16}, // explicit bank count wins
	} {
		p := ScaleParams(tc.nCPU, tc.nGPU, tc.banks)
		if got := p.Banks(); got != tc.wantBanks {
			t.Errorf("ScaleParams(%d,%d,%d): %d banks, want %d",
				tc.nCPU, tc.nGPU, tc.banks, got, tc.wantBanks)
		}
		if p.Topology != TopoMesh {
			t.Errorf("ScaleParams(%d,%d,%d): topology %v, want mesh", tc.nCPU, tc.nGPU, tc.banks, p.Topology)
		}
		if p.NumDevices() != tc.nCPU+tc.nGPU {
			t.Errorf("ScaleParams(%d,%d,%d): %d devices", tc.nCPU, tc.nGPU, tc.banks, p.NumDevices())
		}
		// The mesh must cover every node: devices + banks + memory.
		nodes := p.NumDevices() + p.Banks() + 1
		w := p.NoCMeshWidth
		if w*w < nodes {
			t.Errorf("ScaleParams(%d,%d,%d): %d-wide mesh cannot place %d nodes",
				tc.nCPU, tc.nGPU, tc.banks, w, nodes)
		}
		if w > 1 && (w-1)*(w-1) >= nodes {
			t.Errorf("ScaleParams(%d,%d,%d): mesh width %d not minimal for %d nodes",
				tc.nCPU, tc.nGPU, tc.banks, w, nodes)
		}
		// Per-bank capacity stays constant as banks scale.
		if p.SpandexLLCBytes/p.Banks() != 256*1024 {
			t.Errorf("ScaleParams(%d,%d,%d): per-bank bytes %d, want 256KB",
				tc.nCPU, tc.nGPU, tc.banks, p.SpandexLLCBytes/p.Banks())
		}
		if err := p.Validate(); err != nil {
			t.Errorf("ScaleParams(%d,%d,%d) invalid: %v", tc.nCPU, tc.nGPU, tc.banks, err)
		}
	}
}

func TestTopologyStrings(t *testing.T) {
	if TopoDirect.String() != "direct" || TopoMesh.String() != "mesh" || TopoRing.String() != "ring" {
		t.Error("NoCTopology strings")
	}
	if ClassCPU.String() != "cpu" || ClassGPU.String() != "gpu" {
		t.Error("DeviceClass strings")
	}
}
