package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestSameTickFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-tick events reordered: order[%d] = %d", i, v)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var hits []Time
	e.Schedule(10, func() {
		hits = append(hits, e.Now())
		e.Schedule(5, func() { hits = append(hits, e.Now()) })
		e.Schedule(0, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	want := []Time{10, 10, 15}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v", hits)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits = %v, want %v", hits, want)
		}
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(20, func() { fired++ })
	e.Schedule(30, func() { fired++ })
	if e.RunUntil(20) {
		t.Fatal("RunUntil reported drained with events pending")
	}
	if fired != 2 || e.Now() != 20 {
		t.Fatalf("fired=%d now=%d", fired, e.Now())
	}
	if !e.RunUntil(1 << 40) {
		t.Fatal("RunUntil should drain")
	}
	if fired != 3 {
		t.Fatalf("fired=%d", fired)
	}
}

// TestHeapProperty drives the engine with arbitrary delays and checks
// events always fire in nondecreasing time order.
func TestHeapProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var last Time
		ok := true
		for _, d := range delays {
			e.Schedule(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok && e.Fired() == uint64(len(delays))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockConversions(t *testing.T) {
	if CPUCycles(4) != 2000 {
		t.Fatalf("CPUCycles(4) = %d", CPUCycles(4))
	}
	if GPUCycles(2) != 2858 {
		t.Fatalf("GPUCycles(2) = %d", GPUCycles(2))
	}
}
