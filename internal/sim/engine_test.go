package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestSameTickFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-tick events reordered: order[%d] = %d", i, v)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var hits []Time
	e.Schedule(10, func() {
		hits = append(hits, e.Now())
		e.Schedule(5, func() { hits = append(hits, e.Now()) })
		e.Schedule(0, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	want := []Time{10, 10, 15}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v", hits)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits = %v, want %v", hits, want)
		}
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(20, func() { fired++ })
	e.Schedule(30, func() { fired++ })
	if e.RunUntil(20) {
		t.Fatal("RunUntil reported drained with events pending")
	}
	if fired != 2 || e.Now() != 20 {
		t.Fatalf("fired=%d now=%d", fired, e.Now())
	}
	if !e.RunUntil(1 << 40) {
		t.Fatal("RunUntil should drain")
	}
	if fired != 3 {
		t.Fatalf("fired=%d", fired)
	}
}

// TestHeapProperty drives the engine with arbitrary delays and checks
// events always fire in nondecreasing time order.
func TestHeapProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var last Time
		ok := true
		for _, d := range delays {
			e.Schedule(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok && e.Fired() == uint64(len(delays))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockConversions(t *testing.T) {
	if CPUCycles(4) != 2000 {
		t.Fatalf("CPUCycles(4) = %d", CPUCycles(4))
	}
	if GPUCycles(2) != 2858 {
		t.Fatalf("GPUCycles(2) = %d", GPUCycles(2))
	}
}

// TestZeroDelaySelfReschedule: an event that re-arms itself with zero
// delay fires again at the same tick — behind events already queued for
// that tick, so zero-delay loops cannot starve their peers — and the
// engine still advances to later ticks afterwards.
func TestZeroDelaySelfReschedule(t *testing.T) {
	e := New()
	var log []int
	hops := 0
	var self func()
	self = func() {
		log = append(log, hops)
		hops++
		if hops < 5 {
			e.Schedule(0, self)
		}
	}
	e.Schedule(10, self)
	e.Schedule(10, func() { log = append(log, 100) })
	reached := false
	e.Schedule(11, func() { reached = true })
	e.Run()
	want := []int{0, 100, 1, 2, 3, 4}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
	if !reached || e.Now() != 11 {
		t.Fatalf("reached=%v now=%d", reached, e.Now())
	}
}

// TestBucketWrap exercises the overflow path: targets past the current
// wheel window [base, base+wheelTicks) go to the overflow heap and drain
// back into the wheel as the window turns over, including a chain that
// always jumps one full window ahead of itself.
func TestBucketWrap(t *testing.T) {
	e := New()
	var fired []Time
	rec := func() { fired = append(fired, e.Now()) }
	for _, at := range []Time{3, wheelTicks - 1, wheelTicks, wheelTicks + 1,
		3*wheelTicks + 7, 10*wheelTicks + 123} {
		e.ScheduleAt(at, rec)
	}
	jumps := 0
	var hop func()
	hop = func() {
		fired = append(fired, e.Now())
		if jumps < 4 {
			jumps++
			e.Schedule(wheelTicks, hop)
		}
	}
	e.ScheduleAt(5, hop)
	e.Run()
	want := []Time{3, 5, wheelTicks - 1, wheelTicks, wheelTicks + 1,
		wheelTicks + 5, 2*wheelTicks + 5, 3*wheelTicks + 5, 3*wheelTicks + 7,
		4*wheelTicks + 5, 10*wheelTicks + 123}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d: %v", len(fired), len(want), fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired[%d] = %d, want %d", i, fired[i], want[i])
		}
	}
	if e.Fired() != uint64(len(want)) {
		t.Fatalf("Fired = %d", e.Fired())
	}
}

// TestCalendarHeapCrossCheck drives the calendar queue against a plain
// reference ordered by (time, schedule order), with randomized targets
// spanning several wheel windows and callbacks that schedule follow-up
// work mid-run — so wheel inserts, overflow inserts, and overflow→wheel
// migration at turnover all interleave.
func TestCalendarHeapCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := New()
	type ev struct {
		at  Time
		seq int
	}
	var model, got []ev
	seq := 0
	var schedule func(at Time)
	schedule = func(at Time) {
		id := seq
		seq++
		model = append(model, ev{at, id})
		e.ScheduleAt(at, func() {
			got = append(got, ev{e.Now(), id})
			if seq < 3000 && rng.Intn(3) == 0 {
				schedule(e.Now() + Time(rng.Intn(4*wheelTicks)))
			}
		})
	}
	for i := 0; i < 1000; i++ {
		schedule(Time(rng.Intn(6 * wheelTicks)))
	}
	e.Run()
	sort.SliceStable(model, func(i, j int) bool { return model[i].at < model[j].at })
	if len(got) != len(model) {
		t.Fatalf("fired %d events, want %d", len(got), len(model))
	}
	for i := range model {
		if got[i] != model[i] {
			t.Fatalf("event %d: got (at=%d seq=%d), want (at=%d seq=%d)",
				i, got[i].at, got[i].seq, model[i].at, model[i].seq)
		}
	}
}
