package sim

// Pool is a trivial free-list allocator for pooled event and message
// structs. Unlike sync.Pool it is single-threaded (the simulation runs on
// one goroutine), never drops entries under GC pressure, and costs a slice
// append/pop per op. The zero value is ready to use.
//
// Objects returned by Get may hold stale field values from a previous
// life; callers overwrite every field they read. After Put the object
// belongs to the pool again: retaining or touching it is a use-after-free
// (the poolret analyzer in internal/analysis flags this pattern).
type Pool[T any] struct {
	free []*T
}

// Get returns a recycled *T, or a fresh zero value if the pool is empty.
func (p *Pool[T]) Get() *T {
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return x
	}
	return new(T)
}

// Put returns x to the pool for reuse.
func (p *Pool[T]) Put(x *T) {
	p.free = append(p.free, x)
}
