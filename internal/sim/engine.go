// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated components share one Engine. Time advances in integer ticks
// (1 tick = 1 picosecond by convention; see the constants below). Events
// scheduled for the same tick fire in the order they were scheduled, giving
// fully deterministic, reproducible executions regardless of host platform.
package sim

import "container/heap"

// Time is an absolute simulation time in ticks (picoseconds).
type Time uint64

// Common clock periods, in ticks.
const (
	// PsPerTick documents the tick unit: one picosecond.
	PsPerTick = 1

	// CPUCycle is the period of the 2 GHz CPU clock domain.
	CPUCycle Time = 500

	// GPUCycle is the period of the 700 MHz GPU clock domain
	// (1/700MHz = 1428.57 ps, rounded to an integer tick count).
	GPUCycle Time = 1429
)

// CPUCycles converts a CPU-cycle count into ticks.
func CPUCycles(n uint64) Time { return Time(n) * CPUCycle }

// GPUCycles converts a GPU-cycle count into ticks.
func GPUCycles(n uint64) Time { return Time(n) * GPUCycle }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break: schedule order
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engine is not safe for concurrent use; a simulation runs on one goroutine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// New returns a fresh Engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay ticks (possibly zero, meaning "later this
// tick", after all callbacks already queued for the current tick).
func (e *Engine) Schedule(delay Time, fn func()) {
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute time at. Scheduling in the past panics:
// it always indicates a modeling bug.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// Step executes the single next event. It reports false if no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue drains, returning the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with time ≤ deadline. It reports whether the
// queue drained (true) or the deadline stopped execution first (false).
func (e *Engine) RunUntil(deadline Time) bool {
	for len(e.events) > 0 {
		if e.events[0].at > deadline {
			e.now = deadline
			return false
		}
		e.Step()
	}
	return true
}
