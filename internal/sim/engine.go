// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated components share one Engine. Time advances in integer ticks
// (1 tick = 1 picosecond by convention; see the constants below). Events
// scheduled for the same tick fire in the order they were scheduled, giving
// fully deterministic, reproducible executions regardless of host platform.
//
// The event queue is a calendar queue: a wheel of per-tick buckets covering
// the next wheelTicks ticks, backed by a binary heap for events beyond the
// window. Each bucket is a FIFO linked list of slab-allocated nodes, so
// same-tick ordering is insertion order and the schedule-order tie-break
// costs nothing; a two-level occupancy bitmap locates the next non-empty
// bucket with a handful of trailing-zero counts. Steady-state Schedule and
// Step are allocation-free.
package sim

import (
	"math/bits"
)

// Time is an absolute simulation time in ticks (picoseconds).
type Time uint64

// Common clock periods, in ticks.
const (
	// PsPerTick documents the tick unit: one picosecond.
	PsPerTick = 1

	// CPUCycle is the period of the 2 GHz CPU clock domain.
	CPUCycle Time = 500

	// GPUCycle is the period of the 700 MHz GPU clock domain
	// (1/700MHz = 1428.57 ps, rounded to an integer tick count).
	GPUCycle Time = 1429
)

// CPUCycles converts a CPU-cycle count into ticks.
func CPUCycles(n uint64) Time { return Time(n) * CPUCycle }

// GPUCycles converts a GPU-cycle count into ticks.
func GPUCycles(n uint64) Time { return Time(n) * GPUCycle }

// Event is a scheduled action. Components that schedule on every message
// hop implement Event on a pooled struct (see Pool) instead of passing a
// closure to Schedule, eliminating the per-hop allocation.
type Event interface {
	Fire()
}

// funcEvent adapts a plain callback to the Event interface. A func value
// is pointer-shaped, so the conversion does not allocate.
type funcEvent func()

func (f funcEvent) Fire() { f() }

// callEvent is a pooled single-value callback (the ubiquitous "deliver v
// to done" idiom in the L1 hit paths).
type callEvent struct {
	eng *Engine
	fn  func(uint32)
	v   uint32
}

func (c *callEvent) Fire() {
	fn, v := c.fn, c.v
	c.fn = nil
	c.eng.calls.Put(c)
	fn(v)
}

// Calendar-queue geometry. The wheel spans wheelTicks ticks; events due
// further out wait in an overflow heap and migrate into the wheel when it
// turns over. 1<<15 ticks = 64 CPU cycles covers NoC hops and cache
// latencies; DRAM responses (80k ticks) ride the overflow heap, which is
// small and cheap because only far-future events ever live there.
const (
	wheelBits  = 15
	wheelTicks = 1 << wheelBits
	wheelMask  = wheelTicks - 1
	// nilNode terminates bucket lists and the free list.
	nilNode = -1
)

// node is one queued event in the wheel's slab.
type node struct {
	ev   Event
	at   Time
	next int32
}

// bucket is one wheel slot's FIFO: head and tail indices into the node
// slab, fused into one struct so a push touches a single cache line.
type bucket struct {
	head, tail int32
}

// overflowEvent is an event beyond the wheel window, heap-ordered by
// (at, seq); seq preserves schedule order across the heap round-trip.
type overflowEvent struct {
	at  Time
	seq uint64
	ev  Event
}

// overflowHeap is a hand-rolled min-heap ordered by (at, seq).
// container/heap would box every event into an interface value on the way
// in and out; DRAM-latency events transit this heap once per memory
// access, so the heap works on the concrete type.
type overflowHeap []overflowEvent

func (a overflowEvent) before(b overflowEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *overflowHeap) push(e overflowEvent) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].before(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *overflowHeap) pop() overflowEvent {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = overflowEvent{}
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && s[r].before(s[l]) {
			c = r
		}
		if !s[c].before(s[i]) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engine is not safe for concurrent use; a simulation runs on one goroutine.
type Engine struct {
	now   Time
	seq   uint64
	fired uint64

	// base is the start of the wheel window [base, base+wheelTicks).
	// Invariants: every wheel event's time is in the window and at least
	// max(now, base); every overflow event's time is >= base+wheelTicks.
	base    Time
	count   int // events in the wheel
	buckets []bucket
	nodes   []node
	free    int32
	bits    []uint64 // occupancy bitmap, one bit per bucket
	summary []uint64 // one bit per bits word

	overflow overflowHeap

	calls Pool[callEvent]
}

// New returns a fresh Engine at time zero.
func New() *Engine { return &Engine{} }

func (e *Engine) init() {
	e.buckets = make([]bucket, wheelTicks)
	for i := range e.buckets {
		e.buckets[i].head = nilNode
	}
	e.bits = make([]uint64, wheelTicks/64)
	e.summary = make([]uint64, (wheelTicks/64+63)/64)
	e.free = nilNode
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return e.count + len(e.overflow) }

// Schedule runs fn after delay ticks (possibly zero, meaning "later this
// tick", after all callbacks already queued for the current tick).
func (e *Engine) Schedule(delay Time, fn func()) {
	e.ScheduleEventAt(e.now+delay, funcEvent(fn))
}

// ScheduleAt runs fn at absolute time at. Scheduling in the past panics:
// it always indicates a modeling bug.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	e.ScheduleEventAt(at, funcEvent(fn))
}

// ScheduleEvent fires ev after delay ticks.
func (e *Engine) ScheduleEvent(delay Time, ev Event) {
	e.ScheduleEventAt(e.now+delay, ev)
}

// ScheduleCall runs fn(v) after delay ticks. The event is pooled: unlike
// Schedule(delay, func() { fn(v) }), no closure is allocated.
func (e *Engine) ScheduleCall(delay Time, fn func(uint32), v uint32) {
	c := e.calls.Get()
	c.eng = e
	c.fn = fn
	c.v = v
	e.ScheduleEventAt(e.now+delay, c)
}

// ScheduleEventAt fires ev at absolute time at. Scheduling in the past
// panics: it always indicates a modeling bug.
func (e *Engine) ScheduleEventAt(at Time, ev Event) {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	if e.buckets == nil {
		e.init()
	}
	if at >= e.base+wheelTicks {
		e.seq++
		e.overflow.push(overflowEvent{at: at, seq: e.seq, ev: ev})
		return
	}
	e.push(at, ev)
}

// push appends an event to its wheel bucket's FIFO.
func (e *Engine) push(at Time, ev Event) {
	n := e.free
	if n != nilNode {
		e.free = e.nodes[n].next
	} else {
		n = int32(len(e.nodes))
		e.nodes = append(e.nodes, node{})
	}
	e.nodes[n] = node{ev: ev, at: at, next: nilNode}

	b := int(at & wheelMask)
	bk := &e.buckets[b]
	if bk.head == nilNode {
		bk.head = n
		e.bits[b>>6] |= 1 << (b & 63)
		e.summary[b>>12] |= 1 << ((b >> 6) & 63)
	} else {
		e.nodes[bk.tail].next = n
	}
	bk.tail = n
	e.count++
}

// scan returns the first occupied bucket at or after index from, searching
// the wheel circularly. The wheel window spans exactly wheelTicks ticks,
// so circular index order starting at the window floor is time order.
// Must only be called when count > 0.
func (e *Engine) scan(from int) int {
	w := from >> 6
	if word := e.bits[w] >> (from & 63); word != 0 {
		return from + bits.TrailingZeros64(word)
	}
	if i := e.wordScan(w+1, len(e.bits)); i >= 0 {
		return i<<6 + bits.TrailingZeros64(e.bits[i])
	}
	if i := e.wordScan(0, w+1); i >= 0 {
		return i<<6 + bits.TrailingZeros64(e.bits[i])
	}
	panic("sim: scan on empty wheel")
}

// wordScan returns the first bitmap-word index in [lo, hi) whose word is
// non-zero, located via the summary bitmap, or -1 if none.
func (e *Engine) wordScan(lo, hi int) int {
	for s := lo >> 6; s<<6 < hi; s++ {
		sw := e.summary[s]
		if s == lo>>6 {
			sw &= ^uint64(0) << (lo & 63)
		}
		if sw != 0 {
			if i := s<<6 + bits.TrailingZeros64(sw); i < hi {
				return i
			}
			return -1
		}
	}
	return -1
}

// turnOver advances the wheel window to the overflow heap's earliest event
// and migrates every overflow event inside the new window. Heap pop order
// is (at, seq), and bucket FIFOs append, so migrated events keep schedule
// order among themselves and precede anything scheduled afterwards.
func (e *Engine) turnOver() {
	e.base = e.overflow[0].at
	limit := e.base + wheelTicks
	for len(e.overflow) > 0 && e.overflow[0].at < limit {
		oe := e.overflow.pop()
		e.push(oe.at, oe.ev)
	}
}

// pop removes and returns the next event. Must only be called when events
// are pending.
func (e *Engine) pop() (Time, Event) {
	at, ev, _ := e.popDue(^Time(0))
	return at, ev
}

// popDue removes and returns the next event if its time is at most
// deadline; otherwise it leaves the queue untouched and reports false.
// Must only be called when events are pending. Fusing the bound check
// into the pop halves the bitmap scans RunUntil performs per event.
func (e *Engine) popDue(deadline Time) (Time, Event, bool) {
	if e.count == 0 {
		if e.overflow[0].at > deadline {
			return 0, nil, false
		}
		e.turnOver()
	}
	start := e.now
	if e.base > start {
		start = e.base
	}
	b := e.scan(int(start & wheelMask))
	n := e.buckets[b].head
	nd := &e.nodes[n]
	at, ev := nd.at, nd.ev
	if at > deadline {
		return 0, nil, false
	}
	e.buckets[b].head = nd.next
	if nd.next == nilNode {
		e.bits[b>>6] &^= 1 << (b & 63)
		if e.bits[b>>6] == 0 {
			e.summary[b>>12] &^= 1 << ((b >> 6) & 63)
		}
	}
	nd.ev = nil
	nd.next = e.free
	e.free = n
	e.count--
	return at, ev, true
}

// Step executes the single next event. It reports false if no events remain.
func (e *Engine) Step() bool {
	if e.count == 0 && len(e.overflow) == 0 {
		return false
	}
	at, ev := e.pop()
	e.now = at
	e.fired++
	ev.Fire()
	return true
}

// Run executes events until the queue drains, returning the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with time ≤ deadline. It reports whether the
// queue drained (true) or the deadline stopped execution first (false).
func (e *Engine) RunUntil(deadline Time) bool {
	for e.count > 0 || len(e.overflow) > 0 {
		at, ev, ok := e.popDue(deadline)
		if !ok {
			e.now = deadline
			return false
		}
		e.now = at
		e.fired++
		ev.Fire()
	}
	return true
}
