package workload

import (
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"spandex/internal/device"
	"spandex/internal/memaddr"
)

// fakeExec runs op streams round-robin against a flat memory map with
// sequentially-consistent semantics — a minimal machine for testing the
// coroutine runtime and synchronization helpers without the simulator.
type fakeExec struct {
	mem     map[memaddr.Addr]uint32
	streams []device.OpStream
	prev    []device.OpResult
	done    []bool
	steps   int
}

func newFakeExec(streams ...device.OpStream) *fakeExec {
	return &fakeExec{
		mem:     map[memaddr.Addr]uint32{},
		streams: streams,
		prev:    make([]device.OpResult, len(streams)),
		done:    make([]bool, len(streams)),
	}
}

// run executes until every stream finishes, failing the test on livelock.
func (f *fakeExec) run(t *testing.T) {
	t.Helper()
	for budget := 0; budget < 1<<22; budget++ {
		active := false
		for i, s := range f.streams {
			if f.done[i] {
				continue
			}
			active = true
			op, ok := s.Next(f.prev[i])
			if !ok {
				f.done[i] = true
				continue
			}
			f.steps++
			f.prev[i] = device.OpResult{Valid: true, Value: f.apply(op)}
		}
		if !active {
			return
		}
	}
	t.Fatal("fakeExec: streams did not converge")
}

func (f *fakeExec) apply(op device.Op) uint32 {
	switch op.Kind {
	case device.OpLoad:
		return f.mem[op.Addr]
	case device.OpStore:
		f.mem[op.Addr] = op.Value
		return 0
	case device.OpAtomic:
		old := f.mem[op.Addr]
		nv, wrote := op.Atomic.Apply(old, op.Value, op.Compare)
		if wrote {
			f.mem[op.Addr] = nv
		}
		return old
	case device.OpCompute, device.OpFence:
		return 0
	}
	panic("fakeExec: bad op")
}

func TestCoroutineBasicHandshake(t *testing.T) {
	var seen []uint32
	s := Go(func(th *Thread) {
		th.Store(0x40, 7)
		seen = append(seen, th.Load(0x40))
		seen = append(seen, th.FetchAdd(0x40, 3, false, false))
		seen = append(seen, th.Load(0x40))
	})
	f := newFakeExec(s)
	f.run(t)
	if len(seen) != 3 || seen[0] != 7 || seen[1] != 7 || seen[2] != 10 {
		t.Fatalf("seen = %v", seen)
	}
}

func TestCoroutineCloseReleasesGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	var streams []device.OpStream
	for i := 0; i < 50; i++ {
		streams = append(streams, Go(func(th *Thread) {
			for {
				th.Load(0) // would run forever
			}
		}))
	}
	// Start each body (one exchange), then abandon.
	for _, s := range streams {
		s.Next(device.OpResult{})
	}
	for _, s := range streams {
		s.(*coroStream).Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+5 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+5 {
		t.Fatalf("goroutines leaked: %d -> %d", before, g)
	}
}

func TestBarrierLockstep(t *testing.T) {
	const n = 6
	const phases = 5
	bar := Barrier{Counter: 0x1000, Gen: 0x1040, N: n}
	marks := 0x2000
	var bad bool
	mk := func(id int) device.OpStream {
		return Go(func(th *Thread) {
			for ph := 0; ph < phases; ph++ {
				th.Store(Word(memaddr.Addr(marks), id), uint32(ph+1))
				th.Wait(bar)
				// After the barrier everyone must have written this phase.
				for o := 0; o < n; o++ {
					if th.Load(Word(memaddr.Addr(marks), o)) < uint32(ph+1) {
						bad = true
					}
				}
				th.Wait(bar)
			}
		})
	}
	var streams []device.OpStream
	for i := 0; i < n; i++ {
		streams = append(streams, mk(i))
	}
	f := newFakeExec(streams...)
	f.run(t)
	if bad {
		t.Fatal("barrier let a thread run ahead")
	}
	if f.mem[0x1000] != 0 {
		t.Fatalf("counter not reset: %d", f.mem[0x1000])
	}
	if f.mem[0x1040] != 2*phases {
		t.Fatalf("generation = %d, want %d", f.mem[0x1040], 2*phases)
	}
}

func TestSpinHelpers(t *testing.T) {
	sig := memaddr.Addr(0x40)
	got := uint32(0)
	waiter := Go(func(th *Thread) { got = th.SpinUntilGE(sig, 3) })
	setter := Go(func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Compute(1)
			th.FetchAdd(sig, 1, false, true)
		}
	})
	f := newFakeExec(waiter, setter)
	f.run(t)
	if got < 3 {
		t.Fatalf("spin returned %d", got)
	}
}

func TestRandDeterminismAndSpread(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds collided immediately")
	}
	// Zero seed is remapped, not degenerate.
	z := NewRand(0)
	if z.Uint64() == 0 && z.Uint64() == 0 {
		t.Fatal("zero seed degenerate")
	}
	// Intn stays in range.
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRandPerm(t *testing.T) {
	f := func(seed uint64) bool {
		p := NewRand(seed).Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayoutNonOverlapping(t *testing.T) {
	l := NewLayout()
	a := l.Words(5)
	b := l.Words(16)
	c := l.Lines(2)
	if a%memaddr.LineBytes != 0 || b%memaddr.LineBytes != 0 || c%memaddr.LineBytes != 0 {
		t.Fatal("regions not line aligned")
	}
	if b < a+5*4 {
		t.Fatal("regions overlap")
	}
	if c < b+16*4 {
		t.Fatal("regions overlap")
	}
	if Word(a, 3) != a+12 {
		t.Fatal("Word arithmetic wrong")
	}
}

func TestGenGraphProperties(t *testing.T) {
	g := GenGraph(500, 2000, NewRand(5))
	if g.V != 500 {
		t.Fatal("vertex count")
	}
	edges := 0
	var maxIn int32
	for u := 0; u < g.V; u++ {
		edges += len(g.Edges[u])
		for _, v := range g.Edges[u] {
			if int(v) == u || v < 0 || int(v) >= g.V {
				t.Fatalf("bad edge %d->%d", u, v)
			}
		}
		if g.InDeg[u] > maxIn {
			maxIn = g.InDeg[u]
		}
	}
	if edges < 1800 {
		t.Fatalf("edge count %d", edges)
	}
	// Preferential attachment: the hottest vertex is far above average.
	if maxIn < 3*int32(edges/g.V) {
		t.Fatalf("no skew: max in-degree %d vs avg %d", maxIn, edges/g.V)
	}
}

func TestGenLocalGraphLocality(t *testing.T) {
	const window = 12
	g := GenLocalGraph(1000, 4000, window, 10, NewRand(9))
	local, total := 0, 0
	for u := 0; u < g.V; u++ {
		for _, v := range g.Edges[u] {
			total++
			d := int(v) - u
			if d < 0 {
				d = -d
			}
			if d <= window || d >= g.V-window {
				local++
			}
		}
	}
	if total == 0 || float64(local)/float64(total) < 0.8 {
		t.Fatalf("locality %.2f too low", float64(local)/float64(total))
	}
}

func TestGraphDeterminism(t *testing.T) {
	a := GenLocalGraph(200, 800, 8, 10, NewRand(11))
	b := GenLocalGraph(200, 800, 8, 10, NewRand(11))
	for u := range a.Edges {
		if len(a.Edges[u]) != len(b.Edges[u]) {
			t.Fatal("nondeterministic generation")
		}
		for i := range a.Edges[u] {
			if a.Edges[u][i] != b.Edges[u][i] {
				t.Fatal("nondeterministic edges")
			}
		}
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	wantAll := append(append([]string{"litmus"}, Microbenchmarks()...), Applications()...)
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, n := range wantAll {
		if !have[n] {
			t.Errorf("registry missing %q", n)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("bogus name accepted")
	}
	w, err := ByName("bc")
	if err != nil || w.Meta().Name != "bc" {
		t.Error("lookup broken")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(DefaultBC())
}

// machineFor is the standard test machine shape.
func machineFor() Machine {
	return Machine{CPUThreads: 8, GPUCUs: 16, WarpsPerCU: 4, L1Bytes: 32 * 1024}
}

func TestEveryWorkloadBuildShape(t *testing.T) {
	m := machineFor()
	for _, name := range Names() {
		w, _ := ByName(name)
		p := w.Build(m, 42)
		if len(p.CPU) > m.CPUThreads {
			t.Errorf("%s: %d CPU streams for %d cores", name, len(p.CPU), m.CPUThreads)
		}
		if len(p.GPU) > m.GPUCUs {
			t.Errorf("%s: %d CU groups for %d CUs", name, len(p.GPU), m.GPUCUs)
		}
		for cu, warps := range p.GPU {
			if len(warps) > m.WarpsPerCU {
				t.Errorf("%s: CU %d has %d warps", name, cu, len(warps))
			}
		}
		if p.Validate == nil {
			t.Errorf("%s: no final-state oracle", name)
		}
		p.Close()
	}
}

func TestWorkloadInitDeterminism(t *testing.T) {
	m := machineFor()
	for _, name := range Names() {
		w, _ := ByName(name)
		p1 := w.Build(m, 9)
		p2 := w.Build(m, 9)
		if len(p1.Init) != len(p2.Init) {
			t.Errorf("%s: nondeterministic Init length", name)
		} else {
			for i := range p1.Init {
				if p1.Init[i] != p2.Init[i] {
					t.Errorf("%s: nondeterministic Init[%d]", name, i)
					break
				}
			}
		}
		p1.Close()
		p2.Close()
	}
}

func TestMetaTableVIIFields(t *testing.T) {
	for _, name := range append(Microbenchmarks(), Applications()...) {
		w, _ := ByName(name)
		meta := w.Meta()
		if meta.Partitioning == "" || meta.Synchronization == "" ||
			meta.Sharing == "" || meta.Locality == "" || meta.Params == "" {
			t.Errorf("%s: incomplete Table VII metadata: %+v", name, meta)
		}
	}
}

// TestValidateRejectsCorruptState feeds each oracle a reader that returns
// garbage; every workload must detect it.
func TestValidateRejectsCorruptState(t *testing.T) {
	m := machineFor()
	for _, name := range append(Microbenchmarks(), Applications()...) {
		w, _ := ByName(name)
		p := w.Build(m, 42)
		err := p.Validate(func(a memaddr.Addr) uint32 { return 0xdeadbeef })
		if err == nil {
			t.Errorf("%s: oracle accepted corrupt memory", name)
		}
		p.Close()
	}
}
