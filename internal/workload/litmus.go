package workload

import (
	"fmt"

	"spandex/internal/device"
	"spandex/internal/memaddr"
)

// Litmus is a randomized DRF conformance program: every thread writes a
// private slice of a shared array in phases separated by global barriers;
// after each barrier every thread reads a pseudo-random sample of other
// threads' previous-phase writes and asserts the exact values. Any stale
// read — a self-invalidation, write-propagation, or ordering bug in any
// protocol — fails immediately inside the generator. It is not part of the
// paper's evaluation; it exists to validate SC-for-DRF (paper §III-E)
// across every cache configuration.
type Litmus struct {
	Phases      int
	WordsPerThr int
	ReadsPerThr int
}

// DefaultLitmus returns a moderately sized conformance run.
func DefaultLitmus() *Litmus {
	return &Litmus{Phases: 4, WordsPerThr: 24, ReadsPerThr: 16}
}

// Meta implements Workload.
func (l *Litmus) Meta() Meta {
	return Meta{
		Name:  "litmus",
		Suite: "Conformance",
		Pattern: "all-to-all barrier phases; exact-value checks on every " +
			"cross-thread read (SC-for-DRF oracle)",
		Partitioning:    "data",
		Synchronization: "coarse-grain (global barriers)",
		Sharing:         "flat",
		Locality:        "low",
		Params: fmt.Sprintf("phases: %d, words/thread: %d, reads/thread: %d",
			l.Phases, l.WordsPerThr, l.ReadsPerThr),
	}
}

// value encodes (thread, phase, word) into a unique token.
func litmusValue(thread uint32, phase, word int) uint32 {
	return thread<<20 | uint32(phase)<<10 | (uint32(word) + 1)
}

// Build implements Workload.
func (l *Litmus) Build(m Machine, seed uint64) *Program {
	lay := NewLayout()
	nThr := int(m.TotalThreads())
	data := lay.Words(nThr * l.WordsPerThr)
	barrier := Barrier{Counter: lay.Words(16), Gen: lay.Words(16), N: uint32(nThr)}
	atomics := lay.Words(nThr) // one contended counter lane per thread

	errs := make(chan error, nThr)
	failed := func(format string, args ...interface{}) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	body := func(tid int, rng *Rand) func(t *Thread) {
		return func(t *Thread) {
			mine := Word(data, tid*l.WordsPerThr)
			for phase := 0; phase < l.Phases; phase++ {
				// Write this phase's tokens.
				for w := 0; w < l.WordsPerThr; w++ {
					t.Store(Word(mine, w), litmusValue(uint32(tid), phase, w))
				}
				// Contend on an atomic counter (exercises RMW paths).
				t.FetchAdd(Word(atomics, rng.Intn(nThr)), 1, false, false)
				t.Wait(barrier)
				// Read random other threads' writes from this phase; the
				// barrier's acquire/release makes the values exact.
				for r := 0; r < l.ReadsPerThr; r++ {
					other := rng.Intn(nThr)
					w := rng.Intn(l.WordsPerThr)
					addr := Word(data, other*l.WordsPerThr+w)
					got := t.Load(addr)
					want := litmusValue(uint32(other), phase, w)
					if got != want {
						failed("litmus: thread %d phase %d read %#x from thread %d word %d, want %#x",
							tid, phase, got, other, w, want)
						return
					}
				}
				t.Wait(barrier)
			}
		}
	}

	p := &Program{}
	tid := 0
	rng := NewRand(seed)
	for i := 0; i < m.CPUThreads; i++ {
		p.CPU = append(p.CPU, Go(body(tid, NewRand(rng.Uint64()))))
		tid++
	}
	for cu := 0; cu < m.GPUCUs; cu++ {
		var warps []device.OpStream
		for w := 0; w < m.WarpsPerCU; w++ {
			warps = append(warps, Go(body(tid, NewRand(rng.Uint64()))))
			tid++
		}
		p.GPU = append(p.GPU, warps)
	}
	p.Validate = func(read func(memaddr.Addr) uint32) error {
		select {
		case err := <-errs:
			return err
		default:
		}
		// Every thread's final-phase tokens must be in memory.
		for thr := 0; thr < nThr; thr++ {
			for w := 0; w < l.WordsPerThr; w++ {
				got := read(Word(data, thr*l.WordsPerThr+w))
				want := litmusValue(uint32(thr), l.Phases-1, w)
				if got != want {
					return fmt.Errorf("litmus: final state: thread %d word %d = %#x, want %#x",
						thr, w, got, want)
				}
			}
		}
		// The atomic lanes must sum to nThr*Phases.
		var sum uint32
		for i := 0; i < nThr; i++ {
			sum += read(Word(atomics, i))
		}
		if sum != uint32(nThr*l.Phases) {
			return fmt.Errorf("litmus: atomic sum = %d, want %d", sum, nThr*l.Phases)
		}
		return nil
	}
	return p
}

func init() { Register(DefaultLitmus()) }
