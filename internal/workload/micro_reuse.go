package workload

import (
	"fmt"

	"spandex/internal/device"
	"spandex/internal/memaddr"
)

// ReuseO is the second synthetic microbenchmark (paper §IV-B1): every CPU
// thread densely reads and writes its own tile of matrix B and sparsely
// reads matrix A; every GPU thread does the opposite. Tiles fit in the L1
// and the process repeats, so data written in one iteration is reused by
// the same core in the next — the pattern that rewards obtaining ownership
// for updates (DeNovo/MESI) and punishes write-through + self-invalidation
// (GPU coherence re-fetches and re-writes its own tile every iteration).
type ReuseO struct {
	TileWords   int
	SparseReads int
	Iters       int
	GPUThreads  int
}

// DefaultReuseO returns the scaled-down evaluation size.
func DefaultReuseO() *ReuseO {
	return &ReuseO{TileWords: 256, SparseReads: 16, Iters: 6, GPUThreads: 32}
}

// Meta implements Workload.
func (w *ReuseO) Meta() Meta {
	return Meta{
		Name:            "reuseo",
		Suite:           "Synthetic",
		Pattern:         "per-thread tile rewrite + sparse remote reads",
		Partitioning:    "data",
		Synchronization: "coarse-grain (barrier per phase)",
		Sharing:         "flat",
		Locality:        "high temporal locality in written data",
		Params: fmt.Sprintf("tile: %d words, sparse reads: %d, iterations: %d",
			w.TileWords, w.SparseReads, w.Iters),
	}
}

// Build implements Workload.
func (w *ReuseO) Build(m Machine, seed uint64) *Program {
	lay := NewLayout()
	gpuThreads := w.GPUThreads
	if max := m.GPUCUs * m.WarpsPerCU; gpuThreads > max {
		gpuThreads = max
	}
	// Matrix A: GPU-owned tiles; matrix B: CPU-owned tiles.
	matA := lay.Words(gpuThreads * w.TileWords)
	matB := lay.Words(m.CPUThreads * w.TileWords)
	nThr := uint32(m.CPUThreads + gpuThreads)
	bar := Barrier{Counter: lay.Words(16), Gen: lay.Words(16), N: nThr}

	errs := make(chan error, int(nThr))
	fail := func(format string, args ...interface{}) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	body := func(tid int, ownBase memaddr.Addr, remoteBase memaddr.Addr, remoteWords int, rng *Rand) func(*Thread) {
		return func(t *Thread) {
			for it := 0; it < w.Iters; it++ {
				// Dense read-modify-write of the private tile: each word
				// increments, so reuse across iterations is exact.
				for k := 0; k < w.TileWords; k++ {
					a := Word(ownBase, k)
					v := t.Load(a)
					if v != uint32(it) {
						fail("reuseo: thread %d iter %d own word %d = %d, want %d",
							tid, it, k, v, it)
						return
					}
					t.Store(a, v+1)
				}
				t.Wait(bar)
				// Sparse strided reads of the other device's matrix: its
				// dense phase for this iteration is complete.
				for r := 0; r < w.SparseReads; r++ {
					k := rng.Intn(remoteWords)
					v := t.Load(Word(remoteBase, k))
					if v != uint32(it+1) {
						fail("reuseo: thread %d iter %d remote word %d = %d, want %d",
							tid, it, k, v, it+1)
						return
					}
				}
				t.Wait(bar)
			}
		}
	}

	p := &Program{}
	rng := NewRand(seed)
	for i := 0; i < m.CPUThreads; i++ {
		own := Word(matB, i*w.TileWords)
		p.CPU = append(p.CPU, Go(body(i, own, matA, gpuThreads*w.TileWords, NewRand(rng.Uint64()))))
	}
	g := 0
	for cu := 0; cu < m.GPUCUs && g < gpuThreads; cu++ {
		var warps []device.OpStream
		for wp := 0; wp < m.WarpsPerCU && g < gpuThreads; wp++ {
			own := Word(matA, g*w.TileWords)
			warps = append(warps, Go(body(m.CPUThreads+g, own, matB, m.CPUThreads*w.TileWords, NewRand(rng.Uint64()))))
			g++
		}
		p.GPU = append(p.GPU, warps)
	}

	p.Validate = func(read func(memaddr.Addr) uint32) error {
		select {
		case err := <-errs:
			return err
		default:
		}
		for k := 0; k < gpuThreads*w.TileWords; k += 13 {
			if v := read(Word(matA, k)); v != uint32(w.Iters) {
				return fmt.Errorf("reuseo: A[%d] = %d, want %d", k, v, w.Iters)
			}
		}
		for k := 0; k < m.CPUThreads*w.TileWords; k += 13 {
			if v := read(Word(matB, k)); v != uint32(w.Iters) {
				return fmt.Errorf("reuseo: B[%d] = %d, want %d", k, v, w.Iters)
			}
		}
		return nil
	}
	return p
}

// ReuseS is the third synthetic microbenchmark (paper §IV-B1): CPU threads
// and GPU threads take turns densely reading a shared matrix and sparsely
// writing a few words of it. Only writer-initiated invalidation (Shared
// state) can exploit the dense-read reuse across iterations: self-
// invalidating caches must assume all Valid data is stale after each
// synchronization and re-fetch the whole matrix.
type ReuseS struct {
	MatrixWords    int
	SlotsPerThread int
	Rounds         int
	GPUThreads     int
	// UseRegions enables DeNovo regions (paper §II-C): acquires invalidate
	// only the sparse-slot region, recovering the static matrix's reuse on
	// self-invalidating caches. Registered separately as
	// "reuses-regions" and used by the regions ablation benchmark.
	UseRegions bool
}

// DefaultReuseS returns the scaled-down evaluation size.
func DefaultReuseS() *ReuseS {
	return &ReuseS{MatrixWords: 1024, SlotsPerThread: 2, Rounds: 4, GPUThreads: 8}
}

// Meta implements Workload.
func (w *ReuseS) Meta() Meta {
	name := "reuses"
	if w.UseRegions {
		name = "reuses-regions"
	}
	return Meta{
		Name:            name,
		Suite:           "Synthetic",
		Pattern:         "alternating dense reads + sparse writes of one shared matrix",
		Partitioning:    "data",
		Synchronization: "coarse-grain (barrier per phase)",
		Sharing:         "flat",
		Locality:        "high read locality across synchronization",
		Params: fmt.Sprintf("matrix: %d words, slots/thread: %d, rounds: %d",
			w.MatrixWords, w.SlotsPerThread, w.Rounds),
	}
}

// Build implements Workload.
func (w *ReuseS) Build(m Machine, seed uint64) *Program {
	lay := NewLayout()
	gpuThreads := w.GPUThreads
	if max := m.GPUCUs * m.WarpsPerCU; gpuThreads > max {
		gpuThreads = max
	}
	nThr := m.CPUThreads + gpuThreads
	mat := lay.Words(w.MatrixWords)
	bar := Barrier{Counter: lay.Words(16), Gen: lay.Words(16), N: uint32(nThr)}

	// The first SlotsPerThread*nThr words are the sparse write slots
	// (thread i owns slots [i*S, (i+1)*S)); the rest is static.
	slots := w.SlotsPerThread
	staticBase := nThr * slots
	if staticBase >= w.MatrixWords {
		panic("workload: ReuseS matrix too small for slots")
	}

	p := &Program{}
	for k := staticBase; k < w.MatrixWords; k++ {
		p.Init = append(p.Init, WordInit{Word(mat, k), uint32(0x5A5A0000 + k)})
	}

	errs := make(chan error, nThr)
	fail := func(format string, args ...interface{}) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Phase structure per round: CPU turn (dense read + sparse write by
	// CPU threads; GPU threads only dense read), barrier, GPU turn
	// (roles swapped), barrier. A thread's dense read skips slots owned
	// by *other threads of the currently writing device* to stay DRF.
	isCPU := func(tid int) bool { return tid < m.CPUThreads }
	slotOwner := func(k int) int { return k / slots }

	// CPU threads densely read the whole matrix (the reuse the benchmark
	// measures); GPU threads read every slot but only one static stripe
	// each — enough to force the writer-invalidation traffic without
	// making the latency-tolerant GPU the critical path.
	body := func(tid int) func(*Thread) {
		return func(t *Thread) {
			if w.UseRegions {
				// Only the sparse slots ever change; tell region-capable
				// caches to leave the static matrix valid across acquires.
				t.SetAcquireRegion(mat, Word(mat, staticBase))
			}
			myFirst := tid * slots
			stripeLo, stripeHi := staticBase, w.MatrixWords
			if !isCPU(tid) {
				g := tid - m.CPUThreads
				stripe := (w.MatrixWords - staticBase) / gpuThreads
				stripeLo = staticBase + g*stripe
				stripeHi = stripeLo + stripe
			}
			denseRead := func(round int, cpuTurn bool) bool {
				for k := 0; k < w.MatrixWords; k++ {
					if k >= staticBase && (k < stripeLo || k >= stripeHi) {
						continue
					}
					if k < staticBase {
						owner := slotOwner(k)
						if owner == tid {
							continue // own slots handled by writes
						}
						// Skip slots that might be written this turn.
						if isCPU(owner) == cpuTurn {
							continue
						}
						want := uint32(round)
						if isCPU(owner) {
							want = uint32(round + 1) // CPU turn precedes
						}
						if v := t.Load(Word(mat, k)); v != want {
							fail("reuses: thread %d round %d slot %d = %d, want %d",
								tid, round, k, v, want)
							return false
						}
						continue
					}
					if v := t.Load(Word(mat, k)); v != uint32(0x5A5A0000+k) {
						fail("reuses: thread %d round %d static %d = %d", tid, round, k, v)
						return false
					}
				}
				return true
			}
			for round := 0; round < w.Rounds; round++ {
				// CPU turn.
				if isCPU(tid) {
					for s := 0; s < slots; s++ {
						t.Store(Word(mat, myFirst+s), uint32(round+1))
					}
				}
				if !denseRead(round, true) {
					return
				}
				t.Wait(bar)
				// GPU turn.
				if !isCPU(tid) {
					for s := 0; s < slots; s++ {
						t.Store(Word(mat, myFirst+s), uint32(round+1))
					}
				}
				if !denseRead(round, false) {
					return
				}
				t.Wait(bar)
			}
		}
	}

	for i := 0; i < m.CPUThreads; i++ {
		p.CPU = append(p.CPU, Go(body(i)))
	}
	g := 0
	for cu := 0; cu < m.GPUCUs && g < gpuThreads; cu++ {
		var warps []device.OpStream
		for wp := 0; wp < m.WarpsPerCU && g < gpuThreads; wp++ {
			warps = append(warps, Go(body(m.CPUThreads+g)))
			g++
		}
		p.GPU = append(p.GPU, warps)
	}

	p.Validate = func(read func(memaddr.Addr) uint32) error {
		select {
		case err := <-errs:
			return err
		default:
		}
		for k := 0; k < staticBase; k++ {
			if v := read(Word(mat, k)); v != uint32(w.Rounds) {
				return fmt.Errorf("reuses: slot %d = %d, want %d", k, v, w.Rounds)
			}
		}
		for k := staticBase; k < w.MatrixWords; k += 17 {
			if v := read(Word(mat, k)); v != uint32(0x5A5A0000+k) {
				return fmt.Errorf("reuses: static %d corrupted: %#x", k, v)
			}
		}
		return nil
	}
	return p
}

func init() {
	Register(DefaultReuseO())
	Register(DefaultReuseS())
	regions := DefaultReuseS()
	regions.UseRegions = true
	Register(regions)
}
