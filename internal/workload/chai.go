package workload

import (
	"fmt"

	"spandex/internal/device"
	"spandex/internal/memaddr"
)

// HSTI is Chai's input-partitioned histogram (paper §IV-B2): CPU threads
// and GPU warps use fine-grained synchronization to pop image blocks from
// a shared work queue and atomically update histogram bins. Input data has
// low locality (streamed once); the atomics have high locality (a small,
// hot bin array).
type HSTI struct {
	InputWords int
	BlockWords int
	Bins       int
	CPUThreads int // Table VII: 4 CTs
	GPUWarps   int // Table VII: 16 TBs
}

// DefaultHSTI returns the scaled-down evaluation size (input 1,572,864
// scaled ~64x).
func DefaultHSTI() *HSTI {
	return &HSTI{InputWords: 24576, BlockWords: 256, Bins: 256, CPUThreads: 4, GPUWarps: 16}
}

// Meta implements Workload.
func (w *HSTI) Meta() Meta {
	return Meta{
		Name:            "hsti",
		Suite:           "Chai",
		Pattern:         "shared work queue pop + atomic histogram bins",
		Partitioning:    "data",
		Synchronization: "fine-grain",
		Sharing:         "flat",
		Locality:        "data: low, atomic: high",
		Params: fmt.Sprintf("input: %d words, block: %d, bins: %d",
			w.InputWords, w.BlockWords, w.Bins),
	}
}

// Build implements Workload.
func (w *HSTI) Build(m Machine, seed uint64) *Program {
	lay := NewLayout()
	input := lay.Words(w.InputWords)
	bins := lay.Words(w.Bins)
	head := lay.Words(16)
	nBlocks := w.InputWords / w.BlockWords

	rng := NewRand(seed)
	vals := make([]uint32, w.InputWords)
	p := &Program{}
	for i := range vals {
		vals[i] = uint32(rng.Intn(1 << 16))
		p.Init = append(p.Init, WordInit{Word(input, i), vals[i]})
	}

	body := func(tid int) func(*Thread) {
		return func(t *Thread) {
			for {
				// Pop the next block (fine-grained sync; acquire orders the
				// input reads after any predecessor's release).
				blk := t.FetchAdd(head, 1, true, false)
				if int(blk) >= nBlocks {
					return
				}
				base := int(blk) * w.BlockWords
				for k := 0; k < w.BlockWords; k++ {
					v := t.Load(Word(input, base+k))
					bin := int(v) % w.Bins
					t.FetchAdd(Word(bins, bin), 1, false, false)
				}
			}
		}
	}

	cpus := w.CPUThreads
	if cpus > m.CPUThreads {
		cpus = m.CPUThreads
	}
	for i := 0; i < m.CPUThreads; i++ {
		if i < cpus {
			p.CPU = append(p.CPU, Go(body(i)))
		} else {
			p.CPU = append(p.CPU, nil)
		}
	}
	gw := 0
	gpuWarps := w.GPUWarps
	if max := m.GPUCUs * m.WarpsPerCU; gpuWarps > max {
		gpuWarps = max
	}
	for cu := 0; cu < m.GPUCUs && gw < gpuWarps; cu++ {
		var warps []device.OpStream
		for wp := 0; wp < m.WarpsPerCU && gw < gpuWarps; wp++ {
			warps = append(warps, Go(body(cpus+gw)))
			gw++
		}
		p.GPU = append(p.GPU, warps)
	}

	p.Validate = func(read func(memaddr.Addr) uint32) error {
		want := make([]uint32, w.Bins)
		for _, v := range vals {
			want[int(v)%w.Bins]++
		}
		for b := 0; b < w.Bins; b++ {
			if got := read(Word(bins, b)); got != want[b] {
				return fmt.Errorf("hsti: bin %d = %d, want %d", b, got, want[b])
			}
		}
		if got := read(head); int(got) < nBlocks {
			return fmt.Errorf("hsti: queue head = %d, want ≥ %d", got, nBlocks)
		}
		return nil
	}
	return p
}

// TRNS is Chai's in-place matrix transposition (paper §IV-B2): threads pop
// block-pair tasks and use fine-grained CPU-GPU synchronization (per-block
// locks) to arbitrate conflicting reads and writes of matrix blocks. Both
// the data and the lock atomics have low locality — the case where
// word-granularity DeNovo ownership avoids false sharing on the packed
// lock array.
type TRNS struct {
	Dim      int // matrix dimension in words
	Block    int // block edge in words
	GPUWarps int // Table VII: 8 TBs
	CPUs     int // Table VII: 8 CTs
}

// DefaultTRNS returns the scaled-down evaluation size (64x4096 input
// reshaped to a square blocked matrix).
func DefaultTRNS() *TRNS { return &TRNS{Dim: 96, Block: 8, GPUWarps: 8, CPUs: 8} }

// Meta implements Workload.
func (w *TRNS) Meta() Meta {
	return Meta{
		Name:            "trns",
		Suite:           "Chai",
		Pattern:         "lock-arbitrated in-place block transposition",
		Partitioning:    "data",
		Synchronization: "fine-grain",
		Sharing:         "flat",
		Locality:        "low",
		Params: fmt.Sprintf("matrix: %dx%d words, block: %dx%d",
			w.Dim, w.Dim, w.Block, w.Block),
	}
}

// Build implements Workload.
func (w *TRNS) Build(m Machine, seed uint64) *Program {
	lay := NewLayout()
	n := w.Dim
	nb := n / w.Block
	mat := lay.Words(n * n)
	locks := lay.Words(nb * nb)
	taskCtr := lay.Words(16)

	// Task list: upper-triangle block pairs plus diagonal blocks.
	type task struct{ bi, bj int }
	var tasks []task
	for i := 0; i < nb; i++ {
		for j := i; j < nb; j++ {
			tasks = append(tasks, task{i, j})
		}
	}

	p := &Program{}
	rng := NewRand(seed)
	init := make([]uint32, n*n)
	for i := range init {
		init[i] = rng.U32()
		p.Init = append(p.Init, WordInit{Word(mat, i), init[i]})
	}

	at := func(r, c int) memaddr.Addr { return Word(mat, r*n+c) }
	lockOf := func(bi, bj int) memaddr.Addr { return Word(locks, bi*nb+bj) }

	body := func(tid int) func(*Thread) {
		return func(t *Thread) {
			for {
				k := t.FetchAdd(taskCtr, 1, true, false)
				if int(k) >= len(tasks) {
					return
				}
				tk := tasks[k]
				r0, c0 := tk.bi*w.Block, tk.bj*w.Block
				// Lock both blocks in canonical order (fine-grained
				// arbitration of conflicting blocks, paper §IV-B2).
				first, second := lockOf(tk.bi, tk.bj), lockOf(tk.bj, tk.bi)
				for t.CAS(first, 0, 1, true, false) != 0 {
					t.Compute(64)
				}
				if tk.bi != tk.bj {
					for t.CAS(second, 0, 1, true, false) != 0 {
						t.Compute(64)
					}
				}
				// Swap-transpose the pair.
				for r := 0; r < w.Block; r++ {
					for c := 0; c < w.Block; c++ {
						if tk.bi == tk.bj && c <= r {
							continue
						}
						a := at(r0+r, c0+c)
						b := at(c0+c, r0+r)
						va := t.Load(a)
						vb := t.Load(b)
						t.Store(a, vb)
						t.Store(b, va)
					}
				}
				// Unlock (release: the swapped data becomes visible).
				t.AtomicStore(first, 0, true)
				if tk.bi != tk.bj {
					t.AtomicStore(second, 0, true)
				}
			}
		}
	}

	cpus := w.CPUs
	if cpus > m.CPUThreads {
		cpus = m.CPUThreads
	}
	for i := 0; i < m.CPUThreads; i++ {
		if i < cpus {
			p.CPU = append(p.CPU, Go(body(i)))
		} else {
			p.CPU = append(p.CPU, nil)
		}
	}
	gw := 0
	gpuWarps := w.GPUWarps
	if max := m.GPUCUs * m.WarpsPerCU; gpuWarps > max {
		gpuWarps = max
	}
	for cu := 0; cu < m.GPUCUs && gw < gpuWarps; cu++ {
		var warps []device.OpStream
		for wp := 0; wp < m.WarpsPerCU && gw < gpuWarps; wp++ {
			warps = append(warps, Go(body(cpus+gw)))
			gw++
		}
		p.GPU = append(p.GPU, warps)
	}

	p.Validate = func(read func(memaddr.Addr) uint32) error {
		for r := 0; r < n; r += 5 {
			for c := 0; c < n; c += 3 {
				want := init[c*n+r]
				if got := read(at(r, c)); got != want {
					return fmt.Errorf("trns: [%d][%d] = %#x, want %#x (transpose)", r, c, got, want)
				}
			}
		}
		return nil
	}
	return p
}

func init() {
	Register(DefaultHSTI())
	Register(DefaultTRNS())
}
