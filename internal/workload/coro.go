// Package workload defines the benchmark programs the paper evaluates:
// three synthetic microbenchmarks (Indirection, ReuseO, ReuseS), six
// collaborative CPU-GPU applications from Pannotia and Chai (BC, PR, HSTI,
// TRNS, RSCT, TQH), and the DRF litmus programs used for correctness
// testing. Programs are expressed as imperative thread bodies executed as
// coroutines; each memory operation's result flows back into the body, so
// programs can pop work queues, spin on flags, and branch on loaded data
// exactly like the original applications.
package workload

import (
	"iter"

	"spandex/internal/device"
	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

// coroStream adapts a thread body into a device.OpStream via iter.Pull,
// which runs the body on a runtime coroutine: the Next/do handoff is a
// direct stack switch with no scheduler involvement, an order of magnitude
// cheaper than the channel handshake it replaces. The exchange is still
// strictly synchronous (one outstanding operation per thread), so
// simulations remain deterministic.
type coroStream struct {
	next  func() (device.Op, bool)
	stop  func()
	yield func(device.Op) bool
	// result carries the completed operation's outcome back to the body:
	// Next stores it before resuming, do reads it after yield returns.
	result device.OpResult
	done   bool
}

// coroStopped unwinds a body whose stream was closed mid-exchange. The
// panic runs the body's defers (like runtime.Goexit) and is swallowed at
// the coroutine root.
type coroStopped struct{}

// Thread is the handle a body uses to issue operations.
type Thread struct {
	s *coroStream
	// BackoffBase and BackoffCap bound the compute delay between failed
	// spin polls, in device cycles.
	BackoffBase uint32
	BackoffCap  uint32

	// regionLo/regionHi, when set, tag every acquire with a DeNovo region
	// hint (§II-C): caches that support regions invalidate only that
	// range at the acquire.
	regionLo, regionHi memaddr.Addr
}

// SetAcquireRegion restricts subsequent acquires' self-invalidation to
// [lo, hi) on region-capable caches (DeNovo regions, paper §II-C). Other
// caches ignore the hint. Call ClearAcquireRegion to restore full flashes.
func (t *Thread) SetAcquireRegion(lo, hi memaddr.Addr) {
	t.regionLo, t.regionHi = lo, hi
}

// ClearAcquireRegion restores full-cache acquire flashes.
func (t *Thread) ClearAcquireRegion() { t.regionLo, t.regionHi = 0, 0 }

// Go runs body as a coroutine and returns its operation stream. The
// returned stream must be driven to completion or closed via its owner's
// cleanup (see Program.Close); abandoned bodies exit when quit closes.
func Go(body func(t *Thread)) device.OpStream {
	s := &coroStream{}
	t := &Thread{s: s, BackoffBase: 64, BackoffCap: 1024}
	s.next, s.stop = iter.Pull(func(yield func(device.Op) bool) {
		s.yield = yield
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(coroStopped); !ok {
					panic(r)
				}
			}
		}()
		body(t)
	})
	return s
}

// Next implements device.OpStream.
func (s *coroStream) Next(prev device.OpResult) (device.Op, bool) {
	if s.done {
		return device.Op{}, false
	}
	s.result = prev
	op, ok := s.next()
	if !ok {
		s.done = true
	}
	return op, ok
}

// Close releases the body coroutine if it is still blocked mid-exchange.
func (s *coroStream) Close() {
	if s.done {
		return
	}
	s.done = true
	s.stop()
}

// do issues one operation and suspends the body until its result arrives.
func (t *Thread) do(op device.Op) device.OpResult {
	if op.Acq && t.regionHi > t.regionLo {
		op.RegionLo, op.RegionHi = t.regionLo, t.regionHi
	}
	if !t.s.yield(op) {
		panic(coroStopped{})
	}
	return t.s.result
}

// Load reads a word.
func (t *Thread) Load(addr memaddr.Addr) uint32 {
	return t.do(device.Op{Kind: device.OpLoad, Addr: addr}).Value
}

// Store writes a word (completes into the store buffer).
func (t *Thread) Store(addr memaddr.Addr, v uint32) {
	t.do(device.Op{Kind: device.OpStore, Addr: addr, Value: v})
}

// StoreByte writes one byte of a word (lane 0-3). The protocols perform it
// as a word-granularity read-modify-write (ReqWT+data or ReqO+data) so the
// other bytes stay up-to-date (paper §III-B).
func (t *Thread) StoreByte(addr memaddr.Addr, lane int, v uint8) {
	t.do(device.Op{Kind: device.OpStore, Addr: addr,
		Value: uint32(v) << (8 * lane), ByteMask: 1 << lane})
}

// Compute burns n device cycles.
func (t *Thread) Compute(n uint32) {
	if n == 0 {
		return
	}
	t.do(device.Op{Kind: device.OpCompute, Cycles: n})
}

// FetchAdd atomically adds delta, returning the prior value.
func (t *Thread) FetchAdd(addr memaddr.Addr, delta uint32, acq, rel bool) uint32 {
	return t.do(device.Op{Kind: device.OpAtomic, Addr: addr,
		Atomic: proto.AtomicFetchAdd, Value: delta, Acq: acq, Rel: rel}).Value
}

// AtomicRead reads a word with synchronization semantics (performed
// through the protocol's atomic path, so it observes remote updates).
func (t *Thread) AtomicRead(addr memaddr.Addr, acq bool) uint32 {
	return t.do(device.Op{Kind: device.OpAtomic, Addr: addr,
		Atomic: proto.AtomicRead, Acq: acq}).Value
}

// AtomicStore publishes a value with optional release semantics.
func (t *Thread) AtomicStore(addr memaddr.Addr, v uint32, rel bool) {
	t.do(device.Op{Kind: device.OpAtomic, Addr: addr,
		Atomic: proto.AtomicExchange, Value: v, Rel: rel})
}

// CAS performs a compare-and-swap, returning the prior value.
func (t *Thread) CAS(addr memaddr.Addr, old, new uint32, acq, rel bool) uint32 {
	return t.do(device.Op{Kind: device.OpAtomic, Addr: addr,
		Atomic: proto.AtomicCAS, Compare: old, Value: new, Acq: acq, Rel: rel}).Value
}

// Fence orders prior/later operations (release drains the store buffer;
// acquire self-invalidates stale Valid data).
func (t *Thread) Fence(acq, rel bool) {
	t.do(device.Op{Kind: device.OpFence, Acq: acq, Rel: rel})
}

// SpinUntilGE polls addr (acquire) until its value is ≥ target, with
// exponential backoff, and returns the observed value.
func (t *Thread) SpinUntilGE(addr memaddr.Addr, target uint32) uint32 {
	backoff := t.BackoffBase
	for {
		v := t.AtomicRead(addr, true)
		if v >= target {
			return v
		}
		t.Compute(backoff)
		if backoff < t.BackoffCap {
			backoff *= 2
		}
	}
}

// SpinWhileEQ polls addr (acquire) while it equals v, returning the first
// different value.
func (t *Thread) SpinWhileEQ(addr memaddr.Addr, v uint32) uint32 {
	backoff := t.BackoffBase
	for {
		cur := t.AtomicRead(addr, true)
		if cur != v {
			return cur
		}
		t.Compute(backoff)
		if backoff < t.BackoffCap {
			backoff *= 2
		}
	}
}

// Barrier is a sense-reversing barrier over two words in memory.
type Barrier struct {
	Counter memaddr.Addr
	Gen     memaddr.Addr
	N       uint32
}

// Wait joins the barrier: release semantics on entry (prior writes become
// visible), acquire semantics on exit (stale data is invalidated).
func (t *Thread) Wait(b Barrier) {
	gen := t.AtomicRead(b.Gen, false)
	arrived := t.FetchAdd(b.Counter, 1, false, true)
	if arrived == b.N-1 {
		// Last arrival resets the counter and releases the next
		// generation.
		t.AtomicStore(b.Counter, 0, false)
		t.AtomicStore(b.Gen, gen+1, true)
		t.Fence(true, false)
		return
	}
	t.SpinUntilGE(b.Gen, gen+1)
}
