package workload

import (
	"fmt"
	"sync"

	"spandex/internal/detsort"
	"spandex/internal/device"
	"spandex/internal/memaddr"
)

// Machine describes the simulated machine shape a program is built for.
type Machine struct {
	CPUThreads int // CPU cores used (CTs in Table VII)
	GPUCUs     int
	WarpsPerCU int
	L1Bytes    int
}

// TotalThreads counts every hardware thread context.
func (m Machine) TotalThreads() uint32 {
	return uint32(m.CPUThreads + m.GPUCUs*m.WarpsPerCU)
}

// Meta is the Table VII row describing a workload's communication pattern.
type Meta struct {
	Name    string
	Suite   string // "Synthetic", "Pannotia", "Chai"
	Pattern string // e.g. "data partitioned, fine-grain sync, flat sharing"
	// Partitioning, Synchronization, Sharing, Locality classify the
	// communication pattern as in Table VII.
	Partitioning    string
	Synchronization string
	Sharing         string
	Locality        string
	// Params summarizes the scaled-down execution parameters.
	Params string
}

// WordInit seeds one word of memory before the program starts.
type WordInit struct {
	Addr memaddr.Addr
	Val  uint32
}

// Program is a ready-to-run set of per-thread operation streams plus the
// oracle validating the final memory state.
type Program struct {
	CPU []device.OpStream   // one per CPU core (may contain nils)
	GPU [][]device.OpStream // [cu][warp]

	// Init seeds DRAM before execution (the workload's input data).
	Init []WordInit

	// Validate checks the final memory state; read returns the coherent
	// value of a word after the program drains.
	Validate func(read func(memaddr.Addr) uint32) error
}

// Close releases any coroutine bodies that have not run to completion.
func (p *Program) Close() {
	type closer interface{ Close() }
	for _, s := range p.CPU {
		if c, ok := s.(closer); ok {
			c.Close()
		}
	}
	for _, cu := range p.GPU {
		for _, s := range cu {
			if c, ok := s.(closer); ok {
				c.Close()
			}
		}
	}
}

// Workload builds programs for a machine.
type Workload interface {
	Meta() Meta
	Build(m Machine, seed uint64) *Program
}

// registry is the only package-level mutable state in the simulator; it is
// guarded by regMu so concurrent sweep cells can resolve workloads while a
// host program registers custom ones. Workload implementations themselves
// must be stateless under Build (Build may not mutate the receiver): one
// registered Workload value is shared by every concurrent run.
var (
	regMu    sync.RWMutex
	registry = map[string]Workload{}
)

// Register adds a workload to the global registry (usually from init).
// Safe for concurrent use with ByName/Names.
func Register(w Workload) {
	name := w.Meta().Name
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("workload: duplicate registration of " + name)
	}
	registry[name] = w
}

// ByName looks a workload up. Safe for concurrent use.
func ByName(name string) (Workload, error) {
	regMu.RLock()
	w, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
	return w, nil
}

// Names lists registered workloads, sorted. Safe for concurrent use.
func Names() []string {
	regMu.RLock()
	out := detsort.Keys(registry)
	regMu.RUnlock()
	return out
}

// Microbenchmarks lists the Figure 2 synthetic workloads in paper order.
func Microbenchmarks() []string { return []string{"indirection", "reuseo", "reuses"} }

// Applications lists the Figure 3 collaborative applications in paper order.
func Applications() []string { return []string{"bc", "pr", "hsti", "trns", "rsct", "tqh"} }

// Rand is a deterministic xorshift64* PRNG; all workload randomness flows
// through it so runs are reproducible across platforms.
type Rand struct{ s uint64 }

// NewRand seeds a generator (seed 0 is remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next raw value.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// U32 returns the next 32-bit value.
func (r *Rand) U32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn on non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Layout carves a flat address space into named regions so workloads never
// overlap each other's data or the synchronization block.
type Layout struct{ next memaddr.Addr }

// NewLayout starts allocating at a fixed base, leaving page zero unused.
func NewLayout() *Layout { return &Layout{next: 0x1_0000} }

// Words reserves n words and returns the base address, line-aligned.
func (l *Layout) Words(n int) memaddr.Addr {
	base := l.next
	bytes := memaddr.Addr(n * memaddr.WordBytes)
	l.next += (bytes + memaddr.LineBytes - 1) &^ (memaddr.LineBytes - 1)
	return base
}

// Lines reserves n full lines.
func (l *Layout) Lines(n int) memaddr.Addr {
	return l.Words(n * memaddr.WordsPerLine)
}

// Word returns the address of word i in a region starting at base.
func Word(base memaddr.Addr, i int) memaddr.Addr {
	return base + memaddr.Addr(i*memaddr.WordBytes)
}
