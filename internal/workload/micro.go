package workload

import (
	"fmt"

	"spandex/internal/device"
	"spandex/internal/memaddr"
)

// stride walks a region one word per line to defeat spatial locality
// ("accesses are strided to reduce spatial locality", paper §IV-B1): the
// k-th access of n touches word (k*WordsPerLine mod n) + k/linesWorth.
func strideIndex(k, n int) int {
	lines := (n + memaddr.WordsPerLine - 1) / memaddr.WordsPerLine
	return (k%lines)*memaddr.WordsPerLine + k/lines
}

// Indirection is the first synthetic microbenchmark (paper §IV-B1): CPU
// and GPU take turns transposing a matrix in a loop — CPU threads read
// tiles of matrix A and write tiles of matrix B, then GPU threads read
// tiles of B and write tiles of A. Accesses are strided and tiles sized so
// nothing is reused from the L1. The benchmark isolates the cost of
// hierarchical indirection: every word crosses the CPU-GPU boundary each
// phase.
type Indirection struct {
	// Dim is the square matrix dimension in words.
	Dim int
	// Iters is the number of CPU→GPU round trips.
	Iters int
	// GPUThreads limits how many warps participate.
	GPUThreads int
}

// DefaultIndirection returns the scaled-down evaluation size.
func DefaultIndirection() *Indirection {
	return &Indirection{Dim: 128, Iters: 2, GPUThreads: 32}
}

// Meta implements Workload.
func (w *Indirection) Meta() Meta {
	return Meta{
		Name:            "indirection",
		Suite:           "Synthetic",
		Pattern:         "alternating whole-matrix transposes between CPU and GPU",
		Partitioning:    "data",
		Synchronization: "coarse-grain (barrier per phase)",
		Sharing:         "flat",
		Locality:        "low (strided, no L1 reuse)",
		Params:          fmt.Sprintf("matrix: %dx%d words, iterations: %d", w.Dim, w.Dim, w.Iters),
	}
}

// Build implements Workload.
func (w *Indirection) Build(m Machine, seed uint64) *Program {
	lay := NewLayout()
	n := w.Dim
	matA := lay.Words(n * n)
	matB := lay.Words(n * n)
	gpuThreads := w.GPUThreads
	if max := m.GPUCUs * m.WarpsPerCU; gpuThreads > max {
		gpuThreads = max
	}
	nThr := uint32(m.CPUThreads + gpuThreads)
	bar := Barrier{Counter: lay.Words(16), Gen: lay.Words(16), N: nThr}

	at := func(base memaddr.Addr, row, col int) memaddr.Addr {
		return Word(base, row*n+col)
	}

	// Initial contents of A: unique tokens.
	prog := &Program{}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			prog.Init = append(prog.Init, WordInit{at(matA, r, c), uint32(r*n + c + 1)})
		}
	}

	// transposePhase makes a body segment transposing src into dst for the
	// caller's row slice, strided across lines.
	transpose := func(t *Thread, src, dst memaddr.Addr, rowLo, rowHi int) {
		words := (rowHi - rowLo) * n
		for k := 0; k < words; k++ {
			idx := strideIndex(k, words)
			r := rowLo + idx/n
			c := idx % n
			v := t.Load(at(src, r, c))
			t.Store(at(dst, c, r), v)
		}
	}

	cpuBody := func(tid int) func(*Thread) {
		rows := n / m.CPUThreads
		lo, hi := tid*rows, (tid+1)*rows
		if tid == m.CPUThreads-1 {
			hi = n
		}
		return func(t *Thread) {
			for it := 0; it < w.Iters; it++ {
				transpose(t, matA, matB, lo, hi)
				t.Wait(bar) // publish B, then GPU's turn
				t.Wait(bar) // wait for GPU to finish A
			}
		}
	}
	gpuBody := func(g int) func(*Thread) {
		rows := n / gpuThreads
		lo, hi := g*rows, (g+1)*rows
		if g == gpuThreads-1 {
			hi = n
		}
		return func(t *Thread) {
			for it := 0; it < w.Iters; it++ {
				t.Wait(bar) // wait for CPU phase
				transpose(t, matB, matA, lo, hi)
				t.Wait(bar)
			}
		}
	}

	for i := 0; i < m.CPUThreads; i++ {
		prog.CPU = append(prog.CPU, Go(cpuBody(i)))
	}
	g := 0
	for cu := 0; cu < m.GPUCUs && g < gpuThreads; cu++ {
		var warps []device.OpStream
		for wp := 0; wp < m.WarpsPerCU && g < gpuThreads; wp++ {
			warps = append(warps, Go(gpuBody(g)))
			g++
		}
		prog.GPU = append(prog.GPU, warps)
	}

	prog.Validate = func(read func(memaddr.Addr) uint32) error {
		// After each full iteration A has made a round trip through two
		// transposes, i.e. A is back to its original orientation.
		for r := 0; r < n; r += 7 {
			for c := 0; c < n; c += 5 {
				want := uint32(r*n + c + 1)
				if got := read(at(matA, r, c)); got != want {
					return fmt.Errorf("indirection: A[%d][%d] = %d, want %d", r, c, got, want)
				}
				if got := read(at(matB, c, r)); got != want {
					return fmt.Errorf("indirection: B[%d][%d] = %d, want %d", c, r, got, want)
				}
			}
		}
		return nil
	}
	return prog
}

func init() { Register(DefaultIndirection()) }
