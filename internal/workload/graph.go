package workload

import (
	"fmt"

	"spandex/internal/device"
	"spandex/internal/memaddr"
)

// Graph is a synthetic directed graph in CSR-like form. The generator uses
// preferential attachment, giving the skewed (power-law) degree
// distribution of the paper's real road/mesh inputs' hub structure — the
// property BC's atomic locality and PR's irregular pulls depend on
// (substitute for the olesnik and wing inputs; see DESIGN.md §2).
type Graph struct {
	V     int
	Edges [][]int32 // Edges[u] = out-neighbors of u
	InDeg []int32
}

// GenGraph builds a graph with v vertices and roughly e edges.
func GenGraph(v, e int, rng *Rand) *Graph {
	g := &Graph{V: v, Edges: make([][]int32, v), InDeg: make([]int32, v)}
	// targets is a repeated-endpoint pool implementing preferential
	// attachment: vertices appear once plus once per received edge.
	targets := make([]int32, 0, v+e)
	for u := 0; u < v; u++ {
		targets = append(targets, int32(u))
	}
	perEdge := e / v
	if perEdge < 1 {
		perEdge = 1
	}
	for u := 0; u < v; u++ {
		for k := 0; k < perEdge; k++ {
			t := targets[rng.Intn(len(targets))]
			if int(t) == u {
				t = int32((u + 1) % v)
			}
			g.Edges[u] = append(g.Edges[u], t)
			g.InDeg[t]++
			targets = append(targets, t)
		}
	}
	return g
}

// GenLocalGraph builds a mesh-like graph: most edges stay within a window
// of their source (as in the paper's olesnik finite-element mesh), with a
// small fraction crossing to arbitrary vertices. Partitioned by contiguous
// vertex ranges, a thread's pushes then land mostly in its own partition —
// the high atomic temporal locality BC exploits.
func GenLocalGraph(v, e, window int, crossPct int, rng *Rand) *Graph {
	g := &Graph{V: v, Edges: make([][]int32, v), InDeg: make([]int32, v)}
	perEdge := e / v
	if perEdge < 1 {
		perEdge = 1
	}
	for u := 0; u < v; u++ {
		for k := 0; k < perEdge; k++ {
			var t int
			if rng.Intn(100) < crossPct {
				t = rng.Intn(v)
			} else {
				t = u - window/2 + rng.Intn(window)
				if t < 0 {
					t += v
				}
				if t >= v {
					t -= v
				}
			}
			if t == u {
				t = (u + 1) % v
			}
			g.Edges[u] = append(g.Edges[u], int32(t))
			g.InDeg[t]++
		}
	}
	return g
}

// partition slices [0,n) into near-equal chunks for each of parts workers.
func partition(n, parts, who int) (lo, hi int) {
	per := n / parts
	lo = who * per
	hi = lo + per
	if who == parts-1 {
		hi = n
	}
	return
}

// BC is Pannotia's push-based Betweenness Centrality kernel (paper
// §IV-B2): each thread walks its assigned vertices and atomically updates
// every out-neighbor. Multiple threads may push to the same neighbor, so
// the updates use atomics — and on power-law graphs the hub vertices
// receive most of them, giving the atomics high temporal locality. That is
// the property DeNovo GPU caches exploit with owned atomics.
type BC struct {
	V, E  int
	Iters int
	// GPUWarps limits GPU participation (Table VII: 64 TBs).
	GPUWarps int
}

// DefaultBC returns the scaled-down evaluation size (olesnik: 88k vertices
// 243k edges, scaled ~32x down).
func DefaultBC() *BC { return &BC{V: 3072, E: 9216, Iters: 3, GPUWarps: 64} }

// Meta implements Workload.
func (w *BC) Meta() Meta {
	return Meta{
		Name:            "bc",
		Suite:           "Pannotia",
		Pattern:         "push-based graph updates via atomics",
		Partitioning:    "data",
		Synchronization: "fine-grain",
		Sharing:         "flat",
		Locality:        "high (atomics concentrate on hub vertices)",
		Params:          fmt.Sprintf("synthetic power-law graph: %d vertices, ~%d edges, %d iterations", w.V, w.E, w.Iters),
	}
}

// Build implements Workload.
func (w *BC) Build(m Machine, seed uint64) *Program {
	rng := NewRand(seed)
	// Mesh-like input (olesnik is a finite-element mesh): pushes land
	// mostly within the pushing thread's own vertex range, repeatedly —
	// the high atomic temporal locality of §V-B.
	g := GenLocalGraph(w.V, w.E, 12, 6, rng)
	lay := NewLayout()
	val := lay.Words(w.V)   // atomically updated centrality accumulators
	depth := lay.Words(w.V) // per-vertex data read by its owner

	gpuWarps := w.GPUWarps
	if max := m.GPUCUs * m.WarpsPerCU; gpuWarps > max {
		gpuWarps = max
	}
	nThr := m.CPUThreads + gpuWarps
	bar := Barrier{Counter: lay.Words(16), Gen: lay.Words(16), N: uint32(nThr)}

	p := &Program{}
	for u := 0; u < w.V; u++ {
		p.Init = append(p.Init, WordInit{Word(depth, u), uint32(u%7 + 1)})
	}

	body := func(tid int) func(*Thread) {
		lo, hi := partition(w.V, nThr, tid)
		return func(t *Thread) {
			for it := 0; it < w.Iters; it++ {
				for u := lo; u < hi; u++ {
					d := t.Load(Word(depth, u))
					for _, v := range g.Edges[u] {
						t.FetchAdd(Word(val, int(v)), d, false, false)
					}
				}
				t.Wait(bar)
			}
		}
	}

	for i := 0; i < m.CPUThreads; i++ {
		p.CPU = append(p.CPU, Go(body(i)))
	}
	gw := 0
	for cu := 0; cu < m.GPUCUs && gw < gpuWarps; cu++ {
		var warps []device.OpStream
		for wp := 0; wp < m.WarpsPerCU && gw < gpuWarps; wp++ {
			warps = append(warps, Go(body(m.CPUThreads+gw)))
			gw++
		}
		p.GPU = append(p.GPU, warps)
	}

	p.Validate = func(read func(memaddr.Addr) uint32) error {
		// Expected: val[v] = Iters * Σ_{u→v} depth(u).
		want := make([]uint32, w.V)
		for u := 0; u < w.V; u++ {
			d := uint32(u%7 + 1)
			for _, v := range g.Edges[u] {
				want[v] += d
			}
		}
		for v := 0; v < w.V; v += 3 {
			exp := want[v] * uint32(w.Iters)
			if got := read(Word(val, v)); got != exp {
				return fmt.Errorf("bc: val[%d] = %d, want %d", v, got, exp)
			}
		}
		return nil
	}
	return p
}

// PR is Pannotia's pull-based PageRank kernel (paper §IV-B2): each thread
// reads the ranks of its vertices' in-neighbors with plain loads and
// writes only its own vertices, so no atomics are needed on the data. The
// irregular pulls make the workload memory-throughput bound: what matters
// is how cheaply a read miss traverses the memory system, which is where
// the flat Spandex LLC beats hierarchical indirection.
type PR struct {
	V, E     int
	Iters    int
	GPUWarps int // Table VII: 8 TBs
}

// DefaultPR returns the scaled-down evaluation size (wing: 62k vertices
// 402k edges, scaled down; denser than BC to stress throughput).
func DefaultPR() *PR { return &PR{V: 2048, E: 16384, Iters: 3, GPUWarps: 8} }

// Meta implements Workload.
func (w *PR) Meta() Meta {
	return Meta{
		Name:            "pr",
		Suite:           "Pannotia",
		Pattern:         "pull-based rank propagation via plain loads",
		Partitioning:    "data",
		Synchronization: "coarse-grain",
		Sharing:         "flat",
		Locality:        "moderate",
		Params:          fmt.Sprintf("synthetic power-law graph: %d vertices, ~%d edges, %d iterations", w.V, w.E, w.Iters),
	}
}

// Build implements Workload.
func (w *PR) Build(m Machine, seed uint64) *Program {
	rng := NewRand(seed)
	g := GenGraph(w.V, w.E, rng)
	// Reverse adjacency for pulls.
	in := make([][]int32, w.V)
	for u := 0; u < w.V; u++ {
		for _, v := range g.Edges[u] {
			in[v] = append(in[v], int32(u))
		}
	}
	lay := NewLayout()
	// Two rank arrays, ping-pong per iteration.
	rank := [2]memaddr.Addr{lay.Words(w.V), lay.Words(w.V)}

	gpuWarps := w.GPUWarps
	if max := m.GPUCUs * m.WarpsPerCU; gpuWarps > max {
		gpuWarps = max
	}
	nThr := m.CPUThreads + gpuWarps
	bar := Barrier{Counter: lay.Words(16), Gen: lay.Words(16), N: uint32(nThr)}

	p := &Program{}
	for v := 0; v < w.V; v++ {
		p.Init = append(p.Init, WordInit{Word(rank[0], v), uint32(v%13 + 1)})
	}

	body := func(tid int) func(*Thread) {
		lo, hi := partition(w.V, nThr, tid)
		return func(t *Thread) {
			for it := 0; it < w.Iters; it++ {
				src, dst := rank[it%2], rank[(it+1)%2]
				for v := lo; v < hi; v++ {
					var sum uint32
					for _, u := range in[v] {
						sum += t.Load(Word(src, int(u)))
					}
					t.Store(Word(dst, v), sum/2+1)
				}
				t.Wait(bar)
			}
		}
	}

	for i := 0; i < m.CPUThreads; i++ {
		p.CPU = append(p.CPU, Go(body(i)))
	}
	gw := 0
	for cu := 0; cu < m.GPUCUs && gw < gpuWarps; cu++ {
		var warps []device.OpStream
		for wp := 0; wp < m.WarpsPerCU && gw < gpuWarps; wp++ {
			warps = append(warps, Go(body(m.CPUThreads+gw)))
			gw++
		}
		p.GPU = append(p.GPU, warps)
	}

	p.Validate = func(read func(memaddr.Addr) uint32) error {
		cur := make([]uint32, w.V)
		next := make([]uint32, w.V)
		for v := range cur {
			cur[v] = uint32(v%13 + 1)
		}
		for it := 0; it < w.Iters; it++ {
			for v := 0; v < w.V; v++ {
				var sum uint32
				for _, u := range in[v] {
					sum += cur[u]
				}
				next[v] = sum/2 + 1
			}
			cur, next = next, cur
		}
		final := rank[w.Iters%2]
		for v := 0; v < w.V; v += 3 {
			if got := read(Word(final, v)); got != cur[v] {
				return fmt.Errorf("pr: rank[%d] = %d, want %d", v, got, cur[v])
			}
		}
		return nil
	}
	return p
}

func init() {
	Register(DefaultBC())
	Register(DefaultPR())
}
