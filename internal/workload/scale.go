package workload

import (
	"fmt"

	"spandex/internal/device"
	"spandex/internal/memaddr"
)

// ScaleMix is the scalability workload family: a barrier-phased,
// data-race-free mix of the access patterns that stress a distributed
// directory, sized to run on any device count (the paper's 24-requestor
// machine up to the 64-requestor mesh configurations). Each phase every
// thread
//
//  1. streams a store/load pass over its private chunk (per-device
//     bandwidth, no sharing),
//  2. strides reads across a read-only shared region (sharer-set growth
//     at every LLC bank),
//  3. reads then overwrites a migratory chunk that rotates to the next
//     thread each phase (ownership migration across devices and banks),
//  4. increments a global phase counter (atomic contention at one bank),
//
// then joins a global barrier. Chunk rotation is barrier-separated, so
// the program is DRF; the final image is a pure function of the
// parameters, giving a full validation oracle.
type ScaleMix struct {
	// ChunkWords sizes each private and migratory per-thread chunk.
	ChunkWords int
	// SharedWords sizes the read-only shared region.
	SharedWords int
	// Phases is the number of barrier-separated rounds.
	Phases int
}

// DefaultScaleMix returns a size that keeps the full device-count sweep
// affordable; spandex-bench -scale scales it up.
func DefaultScaleMix() *ScaleMix {
	return &ScaleMix{ChunkWords: 64, SharedWords: 256, Phases: 4}
}

// Meta implements Workload.
func (w *ScaleMix) Meta() Meta {
	return Meta{
		Name:            "scalemix",
		Suite:           "Scalability",
		Pattern:         "private streaming + shared reads + rotating migratory chunks + global atomics",
		Partitioning:    "data (rotating)",
		Synchronization: "coarse-grain (barrier per phase)",
		Sharing:         "mixed (flat shared region, migratory chunks)",
		Locality:        "mixed (streamed private, strided shared)",
		Params: fmt.Sprintf("chunk: %d words, shared: %d words, phases: %d",
			w.ChunkWords, w.SharedWords, w.Phases),
	}
}

// enc packs (phase, thread, word) into the value a migratory or private
// write stores, so validation can recompute every final word.
func scaleEnc(phase, thread, word int) uint32 {
	return uint32(phase)<<20 | uint32(thread)<<10 | uint32(word) | 1<<30
}

// Build implements Workload.
func (w *ScaleMix) Build(m Machine, seed uint64) *Program {
	nThr := m.CPUThreads + m.GPUCUs*m.WarpsPerCU
	lay := NewLayout()
	private := lay.Lines(nThr * w.ChunkWords / memaddr.WordsPerLine)
	migr := lay.Lines(nThr * w.ChunkWords / memaddr.WordsPerLine)
	shared := lay.Words(w.SharedWords)
	counter := lay.Lines(1)
	bar := Barrier{Counter: lay.Words(16), Gen: lay.Words(16), N: uint32(nThr)}

	prog := &Program{}
	for i := 0; i < w.SharedWords; i++ {
		prog.Init = append(prog.Init, WordInit{Word(shared, i), uint32(i) ^ uint32(seed)})
	}
	// Migratory chunks start as phase "-1" writes by their home thread, so
	// the phase-0 read pass has defined values.
	for tid := 0; tid < nThr; tid++ {
		for k := 0; k < w.ChunkWords; k++ {
			prog.Init = append(prog.Init,
				WordInit{Word(migr, tid*w.ChunkWords+k), scaleEnc(0, tid, k) ^ 0xffff})
		}
	}

	body := func(tid int) func(*Thread) {
		return func(t *Thread) {
			var sink uint32
			for p := 0; p < w.Phases; p++ {
				// 1. Private streaming: store then read back.
				for k := 0; k < w.ChunkWords; k++ {
					t.Store(Word(private, tid*w.ChunkWords+k), scaleEnc(p, tid, k))
				}
				for k := 0; k < w.ChunkWords; k++ {
					sink ^= t.Load(Word(private, tid*w.ChunkWords+k))
				}
				// 2. Strided shared reads (one word per line).
				for k := 0; k < w.ChunkWords; k++ {
					sink ^= t.Load(Word(shared, strideIndex(k, w.SharedWords)))
				}
				// 3. Migratory: read the rotated chunk's previous contents,
				// then overwrite it. Rotation is barrier-separated, so the
				// chunk's last writer finished a phase ago.
				c := (tid + p) % nThr
				for k := 0; k < w.ChunkWords; k++ {
					sink ^= t.Load(Word(migr, c*w.ChunkWords+k))
				}
				for k := 0; k < w.ChunkWords; k++ {
					t.Store(Word(migr, c*w.ChunkWords+k), scaleEnc(p, tid, k))
				}
				// 4. Global atomic tick.
				t.FetchAdd(counter, 1, false, true)
				t.Wait(bar)
			}
			// Keep sink live so the loads cannot be elided by refactoring.
			t.Compute(sink & 1)
		}
	}

	tid := 0
	for i := 0; i < m.CPUThreads; i++ {
		prog.CPU = append(prog.CPU, Go(body(tid)))
		tid++
	}
	for cu := 0; cu < m.GPUCUs; cu++ {
		var warps []device.OpStream
		for wp := 0; wp < m.WarpsPerCU; wp++ {
			warps = append(warps, Go(body(tid)))
			tid++
		}
		prog.GPU = append(prog.GPU, warps)
	}

	prog.Validate = func(read func(memaddr.Addr) uint32) error {
		if got := read(counter); got != uint32(nThr*w.Phases) {
			return fmt.Errorf("scalemix: counter = %d, want %d", got, nThr*w.Phases)
		}
		for i := 0; i < w.SharedWords; i += 7 {
			if got, want := read(Word(shared, i)), uint32(i)^uint32(seed); got != want {
				return fmt.Errorf("scalemix: shared[%d] = %d, want %d", i, got, want)
			}
		}
		last := w.Phases - 1
		for tid := 0; tid < nThr; tid++ {
			// Chunk c's final writer in phase `last` is thread (c-last) mod n.
			writer := ((tid-last)%nThr + nThr) % nThr
			for k := 0; k < w.ChunkWords; k += 5 {
				if got, want := read(Word(migr, tid*w.ChunkWords+k)), scaleEnc(last, writer, k); got != want {
					return fmt.Errorf("scalemix: migr chunk %d word %d = %#x, want %#x", tid, k, got, want)
				}
				if got, want := read(Word(private, tid*w.ChunkWords+k)), scaleEnc(last, tid, k); got != want {
					return fmt.Errorf("scalemix: private chunk %d word %d = %#x, want %#x", tid, k, got, want)
				}
			}
		}
		return nil
	}
	return prog
}

func init() { Register(DefaultScaleMix()) }
