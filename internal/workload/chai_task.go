package workload

import (
	"fmt"

	"spandex/internal/device"
	"spandex/internal/memaddr"
)

// RSCT is Chai's fine-grained task-partitioned RANSAC (paper §IV-B2): a
// CPU thread produces sample parameter sets and signals the GPU with
// fine-grained synchronization; every GPU worker then densely reads the
// same input matrix to evaluate the model. CPU→GPU data volume is small
// while all GPU cores share the same reads — strongly hierarchical
// sharing, the pattern an intermediate GPU L2 filters well.
type RSCT struct {
	InputWords int
	Tasks      int
	GPUWarps   int // Table VII: 16 TBs, 1 CT
}

// DefaultRSCT returns the scaled-down evaluation size.
func DefaultRSCT() *RSCT { return &RSCT{InputWords: 2048, Tasks: 6, GPUWarps: 16} }

// Meta implements Workload.
func (w *RSCT) Meta() Meta {
	return Meta{
		Name:            "rsct",
		Suite:           "Chai",
		Pattern:         "CPU produces parameters; all GPU workers densely read one shared input",
		Partitioning:    "task",
		Synchronization: "fine-grain",
		Sharing:         "hierarchical",
		Locality:        "data: high (shared dense reads), atomic: low",
		Params:          fmt.Sprintf("input: %d words, tasks: %d", w.InputWords, w.Tasks),
	}
}

// Build implements Workload.
func (w *RSCT) Build(m Machine, seed uint64) *Program {
	lay := NewLayout()
	input := lay.Words(w.InputWords)
	params := lay.Words(w.Tasks * 16) // one line of parameters per task
	flags := lay.Words(w.Tasks * 16)  // one flag line per task
	results := lay.Words(w.Tasks * 16)
	doneCtr := lay.Words(16)

	gpuWarps := w.GPUWarps
	if max := m.GPUCUs * m.WarpsPerCU; gpuWarps > max {
		gpuWarps = max
	}

	rng := NewRand(seed)
	p := &Program{}
	inputVals := make([]uint32, w.InputWords)
	for i := range inputVals {
		inputVals[i] = rng.U32() % 1024
		p.Init = append(p.Init, WordInit{Word(input, i), inputVals[i]})
	}
	paramVals := make([]uint32, w.Tasks)
	for k := range paramVals {
		paramVals[k] = uint32(rng.Intn(1000) + 1)
	}

	// model scores the input under a parameter (cheap integer "error").
	model := func(param, x uint32) uint32 { return (x ^ param) & 0xff }

	cpuBody := func(t *Thread) {
		for k := 0; k < w.Tasks; k++ {
			// Produce the parameter set, then publish it.
			t.Compute(200)
			t.Store(Word(params, k*16), paramVals[k])
			t.AtomicStore(Word(flags, k*16), 1, true)
		}
		// Wait for all workers to finish all tasks.
		t.SpinUntilGE(doneCtr, uint32(gpuWarps*w.Tasks))
	}

	gpuBody := func(g int) func(*Thread) {
		return func(t *Thread) {
			for k := 0; k < w.Tasks; k++ {
				t.SpinUntilGE(Word(flags, k*16), 1)
				param := t.Load(Word(params, k*16))
				var err uint32
				// Dense shared read: every worker scans the whole input.
				for i := 0; i < w.InputWords; i++ {
					err += model(param, t.Load(Word(input, i)))
				}
				t.FetchAdd(Word(results, k*16), err, false, true)
				t.FetchAdd(doneCtr, 1, false, true)
			}
		}
	}

	for i := 0; i < m.CPUThreads; i++ {
		if i == 0 {
			p.CPU = append(p.CPU, Go(cpuBody))
		} else {
			p.CPU = append(p.CPU, nil)
		}
	}
	gw := 0
	for cu := 0; cu < m.GPUCUs && gw < gpuWarps; cu++ {
		var warps []device.OpStream
		for wp := 0; wp < m.WarpsPerCU && gw < gpuWarps; wp++ {
			warps = append(warps, Go(gpuBody(gw)))
			gw++
		}
		p.GPU = append(p.GPU, warps)
	}

	p.Validate = func(read func(memaddr.Addr) uint32) error {
		for k := 0; k < w.Tasks; k++ {
			var perWorker uint32
			for _, x := range inputVals {
				perWorker += model(paramVals[k], x)
			}
			want := perWorker * uint32(gpuWarps)
			if got := read(Word(results, k*16)); got != want {
				return fmt.Errorf("rsct: result[%d] = %d, want %d", k, got, want)
			}
		}
		return nil
	}
	return p
}

// TQH is Chai's task-queue-system histogram (paper §IV-B2): the CPU pushes
// task descriptors onto per-GPU-partition queues with fine-grained
// synchronization; each GPU worker pops only its own queue and densely
// reads its own partition of the input (minimal hierarchical sharing),
// updating a shared histogram with atomics.
type TQH struct {
	Queues     int // one per GPU worker group
	TasksPerQ  int
	BlockWords int
	Bins       int
	GPUWarps   int // Table VII: 32 TBs, 1 CT
}

// DefaultTQH returns the scaled-down evaluation size.
func DefaultTQH() *TQH {
	return &TQH{Queues: 16, TasksPerQ: 4, BlockWords: 192, Bins: 128, GPUWarps: 32}
}

// Meta implements Workload.
func (w *TQH) Meta() Meta {
	return Meta{
		Name:            "tqh",
		Suite:           "Chai",
		Pattern:         "CPU pushes per-partition task queues; GPU pops and histograms its own partition",
		Partitioning:    "task",
		Synchronization: "fine-grain",
		Sharing:         "hierarchical (per-partition)",
		Locality:        "data: low, atomic: high",
		Params: fmt.Sprintf("queues: %d x %d tasks, block: %d words, bins: %d",
			w.Queues, w.TasksPerQ, w.BlockWords, w.Bins),
	}
}

// Build implements Workload.
func (w *TQH) Build(m Machine, seed uint64) *Program {
	lay := NewLayout()
	nTasks := w.Queues * w.TasksPerQ
	input := lay.Words(nTasks * w.BlockWords)
	bins := lay.Words(w.Bins)
	// Per-queue tail counters (written by CPU producer) and head counters
	// (popped by workers), each on its own line.
	tails := lay.Words(w.Queues * 16)
	heads := lay.Words(w.Queues * 16)
	descs := lay.Words(nTasks * 16) // task descriptors: block index

	gpuWarps := w.GPUWarps
	if max := m.GPUCUs * m.WarpsPerCU; gpuWarps > max {
		gpuWarps = max
	}

	rng := NewRand(seed)
	p := &Program{}
	vals := make([]uint32, nTasks*w.BlockWords)
	for i := range vals {
		vals[i] = rng.U32() % 4096
		p.Init = append(p.Init, WordInit{Word(input, i), vals[i]})
	}

	cpuBody := func(t *Thread) {
		// Push tasks round-robin across queues with release semantics.
		for k := 0; k < nTasks; k++ {
			q := k % w.Queues
			t.Compute(80) // produce the descriptor
			t.Store(Word(descs, k*16), uint32(k))
			t.FetchAdd(Word(tails, q*16), 1, false, true)
		}
	}

	gpuBody := func(g int) func(*Thread) {
		q := g % w.Queues
		return func(t *Thread) {
			for {
				// Claim the next slot in our queue.
				slot := t.FetchAdd(Word(heads, q*16), 1, true, false)
				if int(slot) >= w.TasksPerQ {
					return
				}
				// Wait for the producer to publish that many tasks.
				t.SpinUntilGE(Word(tails, q*16), slot+1)
				taskIdx := t.Load(Word(descs, (int(slot)*w.Queues+q)*16))
				base := int(taskIdx) * w.BlockWords
				for i := 0; i < w.BlockWords; i++ {
					v := t.Load(Word(input, base+i))
					t.FetchAdd(Word(bins, int(v)%w.Bins), 1, false, false)
				}
			}
		}
	}

	for i := 0; i < m.CPUThreads; i++ {
		if i == 0 {
			p.CPU = append(p.CPU, Go(cpuBody))
		} else {
			p.CPU = append(p.CPU, nil)
		}
	}
	gw := 0
	for cu := 0; cu < m.GPUCUs && gw < gpuWarps; cu++ {
		var warps []device.OpStream
		for wp := 0; wp < m.WarpsPerCU && gw < gpuWarps; wp++ {
			warps = append(warps, Go(gpuBody(gw)))
			gw++
		}
		p.GPU = append(p.GPU, warps)
	}

	p.Validate = func(read func(memaddr.Addr) uint32) error {
		want := make([]uint32, w.Bins)
		for _, v := range vals {
			want[int(v)%w.Bins]++
		}
		for b := 0; b < w.Bins; b++ {
			if got := read(Word(bins, b)); got != want[b] {
				return fmt.Errorf("tqh: bin %d = %d, want %d", b, got, want[b])
			}
		}
		return nil
	}
	return p
}

func init() {
	Register(DefaultRSCT())
	Register(DefaultTQH())
}
