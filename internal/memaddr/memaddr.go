// Package memaddr defines the address geometry shared by every component:
// 64-byte cache lines divided into 16 four-byte words, with word selection
// expressed as 16-bit masks. All coherence state in the Spandex LLC is
// tracked per word (paper §III-B); this package supplies the mask algebra.
package memaddr

import "math/bits"

const (
	// LineBytes is the cache line size in bytes.
	LineBytes = 64
	// WordBytes is the coherence word size in bytes.
	WordBytes = 4
	// WordsPerLine is the number of coherence words in a line.
	WordsPerLine = LineBytes / WordBytes
	// LineShift is log2(LineBytes).
	LineShift = 6
	// WordShift is log2(WordBytes).
	WordShift = 2
)

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// LineAddr is an address with the line-offset bits cleared; it identifies
// a cache line.
type LineAddr uint64

// WordMask selects a subset of the 16 words in a line; bit i selects word i.
type WordMask uint16

// FullMask selects every word in a line.
const FullMask WordMask = 1<<WordsPerLine - 1

// Line returns the line containing a.
func (a Addr) Line() LineAddr { return LineAddr(a &^ (LineBytes - 1)) }

// WordIndex returns the index (0..15) of the word containing a.
func (a Addr) WordIndex() int { return int(a>>WordShift) & (WordsPerLine - 1) }

// WordMaskOf returns the single-word mask for the word containing a.
func (a Addr) WordMaskOf() WordMask { return 1 << a.WordIndex() }

// Addr returns the byte address of word index i within line l.
func (l LineAddr) Addr(i int) Addr { return Addr(l) + Addr(i*WordBytes) }

// MaskOf returns the single-word mask for index i.
func MaskOf(i int) WordMask { return 1 << i }

// Count returns the number of words selected by m.
func (m WordMask) Count() int { return bits.OnesCount16(uint16(m)) }

// Has reports whether word index i is selected.
func (m WordMask) Has(i int) bool { return m&(1<<i) != 0 }

// Bytes returns the number of data bytes m selects.
func (m WordMask) Bytes() int { return m.Count() * WordBytes }

// ForEach calls fn for every selected word index, in ascending order.
func (m WordMask) ForEach(fn func(i int)) {
	for w := uint16(m); w != 0; {
		i := bits.TrailingZeros16(w)
		fn(i)
		w &= w - 1
	}
}

// LineData is the simulated contents of one line: one version token per
// word. Workloads store monotonically increasing tokens so correctness
// oracles can detect stale or corrupted reads.
type LineData [WordsPerLine]uint32

// Merge copies the words selected by mask from src into d.
func (d *LineData) Merge(src *LineData, mask WordMask) {
	mask.ForEach(func(i int) { d[i] = src[i] })
}
