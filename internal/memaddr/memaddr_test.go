package memaddr

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	if WordsPerLine != 16 {
		t.Fatalf("WordsPerLine = %d, want 16", WordsPerLine)
	}
	if 1<<LineShift != LineBytes || 1<<WordShift != WordBytes {
		t.Fatal("shift constants inconsistent with sizes")
	}
	if FullMask.Count() != WordsPerLine {
		t.Fatalf("FullMask selects %d words", FullMask.Count())
	}
}

func TestLineAndWordIndex(t *testing.T) {
	cases := []struct {
		addr Addr
		line LineAddr
		word int
	}{
		{0, 0, 0},
		{3, 0, 0},
		{4, 0, 1},
		{63, 0, 15},
		{64, 64, 0},
		{0x1234, 0x1200, 13},
	}
	for _, c := range cases {
		if got := c.addr.Line(); got != c.line {
			t.Errorf("Line(%#x) = %#x, want %#x", c.addr, got, c.line)
		}
		if got := c.addr.WordIndex(); got != c.word {
			t.Errorf("WordIndex(%#x) = %d, want %d", c.addr, got, c.word)
		}
	}
}

func TestAddrRoundTrip(t *testing.T) {
	f := func(a Addr) bool {
		l := a.Line()
		i := a.WordIndex()
		back := l.Addr(i)
		// back must be the word-aligned address of a.
		return back == a&^(WordBytes-1) && back.Line() == l && back.WordIndex() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaskAlgebra(t *testing.T) {
	f := func(m WordMask) bool {
		n := 0
		seen := WordMask(0)
		last := -1
		m.ForEach(func(i int) {
			if i <= last {
				t.Fatalf("ForEach out of order: %d after %d", i, last)
			}
			last = i
			n++
			seen |= MaskOf(i)
			if !m.Has(i) {
				t.Fatalf("Has(%d) false but ForEach visited it", i)
			}
		})
		return n == m.Count() && seen == m && m.Bytes() == 4*n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	var dst, src LineData
	for i := range src {
		src[i] = uint32(100 + i)
		dst[i] = uint32(i)
	}
	dst.Merge(&src, 0b1010)
	for i := range dst {
		want := uint32(i)
		if i == 1 || i == 3 {
			want = uint32(100 + i)
		}
		if dst[i] != want {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], want)
		}
	}
}
