package spandex_test

// The classic litmus corpus, as ordinary table tests: each shape
// (message-passing, store-buffering-with-fence, coRR, coWW, ownership
// ping-pong) runs on every cache configuration and every CPU/GPU thread
// placement, with the per-transition coherence audit enabled. These pin
// the textbook orderings SC-for-DRF promises; the randomized differential
// fuzzer (internal/conform, cmd/spandex-fuzz) explores the space around
// them.
//
// This is an external test package: internal/conform imports the root
// package, so the corpus tests that want both live out here.

import (
	"fmt"
	"testing"

	"spandex"
	"spandex/internal/conform"
)

// recorder collects the first in-thread assertion failure; bodies keep
// running after a failure so multi-thread protocols (spins, barriers)
// stay live.
type recorder struct{ err error }

func (r *recorder) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// litmusShape builds fresh thread bodies and a final-state validator per
// run (run-local state lives in the closure).
type litmusShape struct {
	name string
	make func() (bodies [2]func(*spandex.Thread), validate func(read func(spandex.Addr) uint32) error)
}

// litmusWorkload places a shape's two threads on a CPU/GPU mix.
type litmusWorkload struct {
	shape litmusShape
	gpu   [2]bool
}

func (w *litmusWorkload) Meta() spandex.Meta {
	return spandex.Meta{
		Name:            "litmus:" + w.shape.name,
		Suite:           "Conformance",
		Pattern:         "two-thread litmus shape; exact-value ordering checks",
		Partitioning:    "data",
		Synchronization: "fine-grain (flags, fences, barriers)",
		Sharing:         "flat",
		Locality:        "low",
	}
}

func (w *litmusWorkload) Build(m spandex.Machine, seed uint64) *spandex.Program {
	bodies, validate := w.shape.make()
	p := &spandex.Program{Validate: validate}
	for i, body := range bodies {
		s := spandex.GoThread(body)
		if w.gpu[i] {
			p.GPU = append(p.GPU, []spandex.OpStream{s})
		} else {
			p.CPU = append(p.CPU, s)
		}
	}
	return p
}

// messagePassing: T0 publishes data then releases a flag; T1 acquires the
// flag and must see the data.
func messagePassing() litmusShape {
	return litmusShape{name: "message-passing", make: func() ([2]func(*spandex.Thread), func(func(spandex.Addr) uint32) error) {
		lay := spandex.NewLayout()
		data := lay.Words(16)
		flag := lay.Words(16)
		var rec recorder
		bodies := [2]func(*spandex.Thread){
			func(t *spandex.Thread) {
				t.Store(data, 0xda7a)
				t.AtomicStore(flag, 1, true)
			},
			func(t *spandex.Thread) {
				t.SpinUntilGE(flag, 1)
				if got := t.Load(data); got != 0xda7a {
					rec.fail("mp: flag observed but data = %#x, want 0xda7a", got)
				}
			},
		}
		return bodies, func(read func(spandex.Addr) uint32) error { return rec.err }
	}}
}

// storeBufferingWithFence: with full fences between the (atomic) store and
// the opposite load, both threads reading 0 is forbidden.
func storeBufferingWithFence() litmusShape {
	return litmusShape{name: "store-buffering-fence", make: func() ([2]func(*spandex.Thread), func(func(spandex.Addr) uint32) error) {
		lay := spandex.NewLayout()
		x := lay.Words(16)
		y := lay.Words(16)
		var r0, r1 uint32
		bodies := [2]func(*spandex.Thread){
			func(t *spandex.Thread) {
				t.AtomicStore(x, 1, true)
				t.Fence(true, true)
				r0 = t.AtomicRead(y, true)
			},
			func(t *spandex.Thread) {
				t.AtomicStore(y, 1, true)
				t.Fence(true, true)
				r1 = t.AtomicRead(x, true)
			},
		}
		return bodies, func(read func(spandex.Addr) uint32) error {
			if r0 == 0 && r1 == 0 {
				return fmt.Errorf("sb: forbidden outcome r0=0, r1=0 (stores reordered past fences)")
			}
			return nil
		}
	}}
}

// coRR: a reader polling one word written with ascending values must never
// observe time going backwards.
func coherenceReadRead() litmusShape {
	const n = 16
	return litmusShape{name: "coRR", make: func() ([2]func(*spandex.Thread), func(func(spandex.Addr) uint32) error) {
		lay := spandex.NewLayout()
		x := lay.Words(16)
		var rec recorder
		bodies := [2]func(*spandex.Thread){
			func(t *spandex.Thread) {
				for i := uint32(1); i <= n; i++ {
					t.AtomicStore(x, i, true)
				}
			},
			func(t *spandex.Thread) {
				prev := uint32(0)
				for i := 0; i < n; i++ {
					v := t.AtomicRead(x, true)
					if v < prev {
						rec.fail("coRR: read #%d observed %d after %d (non-monotonic)", i, v, prev)
					}
					prev = v
				}
			},
		}
		return bodies, func(read func(spandex.Addr) uint32) error {
			if rec.err != nil {
				return rec.err
			}
			if got := read(x); got != n {
				return fmt.Errorf("coRR: final value %d, want %d", got, n)
			}
			return nil
		}
	}}
}

// coWW: concurrent fetch-adds on one word; each thread's own return values
// must be strictly increasing and the final sum exact.
func coherenceWriteWrite() litmusShape {
	const perThr = 8
	return litmusShape{name: "coWW", make: func() ([2]func(*spandex.Thread), func(func(spandex.Addr) uint32) error) {
		lay := spandex.NewLayout()
		x := lay.Words(16)
		var rec recorder
		body := func(delta uint32) func(*spandex.Thread) {
			return func(t *spandex.Thread) {
				last := int64(-1)
				for i := 0; i < perThr; i++ {
					old := t.FetchAdd(x, delta, false, false)
					if int64(old) <= last {
						rec.fail("coWW: fetch-add observed %d after %d (lost update)", old, last)
					}
					last = int64(old)
				}
			}
		}
		bodies := [2]func(*spandex.Thread){body(3), body(5)}
		return bodies, func(read func(spandex.Addr) uint32) error {
			if rec.err != nil {
				return rec.err
			}
			if got, want := read(x), uint32(perThr*(3+5)); got != want {
				return fmt.Errorf("coWW: final sum %d, want %d", got, want)
			}
			return nil
		}
	}}
}

// ownershipPingPong: a buffer alternates writers each barrier round; the
// reader must observe the full round's values exactly.
func ownershipPingPongShape() litmusShape {
	const words, rounds = 8, 4
	val := func(r, w int) uint32 { return 0x50<<16 | uint32(r)<<8 | uint32(w) + 1 }
	return litmusShape{name: "ownership-pingpong", make: func() ([2]func(*spandex.Thread), func(func(spandex.Addr) uint32) error) {
		lay := spandex.NewLayout()
		buf := lay.Words(words)
		barrier := spandex.Barrier{Counter: lay.Words(16), Gen: lay.Words(16), N: 2}
		var rec recorder
		body := func(tid int) func(*spandex.Thread) {
			return func(t *spandex.Thread) {
				for r := 0; r < rounds; r++ {
					if r%2 == tid {
						for w := 0; w < words; w++ {
							t.Store(spandex.WordAddr(buf, w), val(r, w))
						}
					}
					t.Wait(barrier)
					if r%2 != tid {
						for w := 0; w < words; w++ {
							if got := t.Load(spandex.WordAddr(buf, w)); got != val(r, w) {
								rec.fail("pingpong: round %d word %d = %#x, want %#x", r, w, got, val(r, w))
							}
						}
					}
					t.Wait(barrier)
				}
			}
		}
		bodies := [2]func(*spandex.Thread){body(0), body(1)}
		return bodies, func(read func(spandex.Addr) uint32) error {
			if rec.err != nil {
				return rec.err
			}
			for w := 0; w < words; w++ {
				if got := read(spandex.WordAddr(buf, w)); got != val(rounds-1, w) {
					return fmt.Errorf("pingpong: final word %d = %#x, want %#x", w, got, val(rounds-1, w))
				}
			}
			return nil
		}
	}}
}

func TestLitmusCorpus(t *testing.T) {
	shapes := []litmusShape{
		messagePassing(),
		storeBufferingWithFence(),
		coherenceReadRead(),
		coherenceWriteWrite(),
		ownershipPingPongShape(),
	}
	placements := []struct {
		name string
		gpu  [2]bool
	}{
		{"cpu-cpu", [2]bool{false, false}},
		{"cpu-gpu", [2]bool{false, true}},
		{"gpu-gpu", [2]bool{true, true}},
	}
	for _, shape := range shapes {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			for _, pl := range placements {
				pl := pl
				t.Run(pl.name, func(t *testing.T) {
					for _, cfg := range spandex.ConfigNames() {
						cfg := cfg
						t.Run(cfg, func(t *testing.T) {
							t.Parallel()
							params := spandex.FastParams()
							params.CPUCores, params.GPUCUs, params.WarpsPerCU = 1, 0, 1
							for _, g := range pl.gpu {
								if g {
									params.GPUCUs++
								}
							}
							if !pl.gpu[0] && !pl.gpu[1] {
								params.CPUCores = 2
							}
							_, err := spandex.Run(&litmusWorkload{shape: shape, gpu: pl.gpu}, spandex.Options{
								ConfigName:           cfg,
								Params:               &params,
								Seed:                 1,
								CheckInvariants:      true,
								CheckEveryTransition: true,
								Validate:             true,
								MaxTime:              conform.DefaultMaxTime,
							})
							if err != nil {
								t.Fatal(err)
							}
						})
					}
				})
			}
		})
	}
}
