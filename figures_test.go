package spandex

import (
	"testing"
)

// totalTraffic sums a figure cell's normalized traffic.
func totalTraffic(f *FigureData, wn, cn string) float64 {
	var s float64
	for _, v := range f.Traffic[wn][cn] {
		s += v
	}
	return s
}

// TestFigure2Shape asserts the qualitative claims the paper makes about
// the synthetic microbenchmarks (paper §V-A): who wins and roughly why.
// Absolute numbers differ from the paper's testbed; the shape must hold.
func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	f, err := RunFigure2(Options{Seed: 42, Validate: true})
	if err != nil {
		t.Fatal(err)
	}

	// Indirection: hierarchical configurations pay for routing all CPU-GPU
	// communication through two cache levels.
	hb, sb := f.BestPair("indirection", func(cn string) float64 { return f.Time["indirection"][cn] })
	if sb >= hb {
		t.Errorf("indirection: Sbest time %.2f not better than Hbest %.2f", sb, hb)
	}
	// DeNovo CPU transfers only owned words: SDG traffic below SMG.
	if totalTraffic(f, "indirection", "SDG") >= totalTraffic(f, "indirection", "SMG") {
		t.Errorf("indirection: DeNovo CPU traffic %.2f not below MESI CPU %.2f",
			totalTraffic(f, "indirection", "SDG"), totalTraffic(f, "indirection", "SMG"))
	}

	// ReuseO: DeNovo GPU caches keep ownership of their tiles, so every
	// DeNovo-GPU configuration moves less data than its GPU-coherence twin.
	for _, pair := range [][2]string{{"HMD", "HMG"}, {"SMD", "SMG"}, {"SDD", "SDG"}} {
		d, g := totalTraffic(f, "reuseo", pair[0]), totalTraffic(f, "reuseo", pair[1])
		if d >= g {
			t.Errorf("reuseo: %s traffic %.2f not below %s %.2f", pair[0], d, pair[1], g)
		}
	}

	// ReuseS: only writer-initiated invalidation retains the dense reads;
	// MESI-CPU configurations beat DeNovo-CPU ones on both metrics.
	for _, mesiCfg := range []string{"SMG", "SMD"} {
		for _, dnCfg := range []string{"SDG", "SDD"} {
			if f.Time["reuses"][mesiCfg] >= f.Time["reuses"][dnCfg] {
				t.Errorf("reuses: %s time %.2f not below %s %.2f",
					mesiCfg, f.Time["reuses"][mesiCfg], dnCfg, f.Time["reuses"][dnCfg])
			}
			if totalTraffic(f, "reuses", mesiCfg) >= totalTraffic(f, "reuses", dnCfg) {
				t.Errorf("reuses: %s traffic not below %s", mesiCfg, dnCfg)
			}
		}
	}

	// Headline: the best Spandex configuration beats the best hierarchical
	// one on average for both metrics (paper: -18% time, -40% traffic).
	h := f.ComputeHeadline()
	if h.AvgTime < 0.05 || h.AvgTime > 0.60 {
		t.Errorf("microbenchmark avg time reduction %.0f%% outside credible band", h.AvgTime*100)
	}
	if h.AvgTraffic < 0.05 {
		t.Errorf("microbenchmark avg traffic reduction %.0f%% too small", h.AvgTraffic*100)
	}
}

// TestFigure3Shape asserts the qualitative claims about the collaborative
// applications (paper §V-B).
func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	f, err := RunFigure3(Options{Seed: 42, Validate: true})
	if err != nil {
		t.Fatal(err)
	}

	// BC: DeNovo GPU caches exploit the high temporal locality of the
	// atomics, drastically beating the GPU-coherence twin configurations.
	for _, pair := range [][2]string{{"HMD", "HMG"}, {"SMD", "SMG"}, {"SDD", "SDG"}} {
		d, g := f.Time["bc"][pair[0]], f.Time["bc"][pair[1]]
		if d >= g*0.9 {
			t.Errorf("bc: %s time %.2f not clearly below %s %.2f", pair[0], d, pair[1], g)
		}
		if totalTraffic(f, "bc", pair[0]) >= totalTraffic(f, "bc", pair[1]) {
			t.Errorf("bc: %s traffic not below %s", pair[0], pair[1])
		}
	}

	// PR, HSTI, TRNS, TQH: the flat Spandex LLC reduces execution time
	// relative to the hierarchical baseline.
	for _, wn := range []string{"pr", "hsti", "trns", "tqh"} {
		hb, sb := f.BestPair(wn, func(cn string) float64 { return f.Time[wn][cn] })
		if sb >= hb {
			t.Errorf("%s: Sbest time %.2f not better than Hbest %.2f", wn, sb, hb)
		}
	}

	// TRNS: word-granularity ownership avoids false sharing on the packed
	// lock array — SDD is the best configuration.
	for _, cn := range ConfigNames() {
		if cn == "SDD" {
			continue
		}
		if f.Time["trns"]["SDD"] > f.Time["trns"][cn] {
			t.Errorf("trns: SDD %.2f slower than %s %.2f", f.Time["trns"]["SDD"], cn, f.Time["trns"][cn])
		}
	}

	// RSCT: hierarchical sharing means the GPU L2 filters well; Spandex
	// must at least roughly match (within 10%), not necessarily win big.
	hb, sb := f.BestPair("rsct", func(cn string) float64 { return f.Time["rsct"][cn] })
	if sb > hb*1.10 {
		t.Errorf("rsct: Sbest %.2f more than 10%% behind Hbest %.2f", sb, hb)
	}

	// Headline: in the paper's band (16% avg, 29% max time; 27%/58% traffic).
	h := f.ComputeHeadline()
	if h.AvgTime < 0.05 || h.AvgTime > 0.40 {
		t.Errorf("application avg time reduction %.0f%% outside credible band (paper: 16%%)", h.AvgTime*100)
	}
	if h.MaxTime < 0.15 {
		t.Errorf("application max time reduction %.0f%% too small (paper: 29%%)", h.MaxTime*100)
	}
	if h.AvgTraffic < 0.05 {
		t.Errorf("application avg traffic reduction %.0f%% too small (paper: 27%%)", h.AvgTraffic*100)
	}
}

// TestAllWorkloadsValidateEverywhere is the broad end-to-end correctness
// net: every workload's final-state oracle must pass on every
// configuration, with coherence invariant checking enabled.
func TestAllWorkloadsValidateEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation sweep in -short mode")
	}
	names := append(append([]string{}, Figure2Workloads()...), Figure3Workloads()...)
	for _, wn := range names {
		for _, cn := range ConfigNames() {
			wn, cn := wn, cn
			t.Run(wn+"/"+cn, func(t *testing.T) {
				w, err := WorkloadByName(wn)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := Run(w, Options{ConfigName: cn, Seed: 1,
					CheckInvariants: true, Validate: true}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
