package spandex

import (
	"testing"
)

// The benchmarks below regenerate the paper's evaluation artifacts: one
// benchmark per figure workload (Figures 2 and 3) plus the table printers.
// Each iteration runs the workload on all six Table V configurations and
// reports the paper's two metrics as custom units:
//
//	Hbest-ns / Sbest-ns     — simulated execution time of the best
//	                          hierarchical / Spandex configuration
//	Sbest-time-red-%        — Sbest execution-time reduction vs Hbest
//	Sbest-traffic-red-%     — Sbest network-traffic reduction vs Hbest
//
// Run with: go test -bench=. -benchmem
func benchWorkload(b *testing.B, title, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cells := Sweep([]string{name}, ConfigNames(), Options{Seed: 42})
		f, err := BuildFigure(title, []string{name}, cells)
		if err != nil {
			b.Fatal(err)
		}
		h := f.ComputeHeadline()
		hb, sb := f.BestPair(name, func(cn string) float64 { return f.Time[name][cn] })
		// Un-normalize against the HMG cell to report simulated time.
		var hmgNs float64
		for _, c := range cells {
			if c.Config == "HMG" {
				hmgNs = float64(c.Result.ExecTime) / 1000 // ticks(ps) → ns
			}
		}
		b.ReportMetric(hb*hmgNs, "Hbest-simns")
		b.ReportMetric(sb*hmgNs, "Sbest-simns")
		b.ReportMetric(h.TimeReduction[name]*100, "Sbest-time-red-%")
		b.ReportMetric(h.TrafficReduction[name]*100, "Sbest-traffic-red-%")
	}
}

// --- Figure 2: synthetic microbenchmarks ---

func BenchmarkFigure2Indirection(b *testing.B) { benchWorkload(b, "fig2", "indirection") }
func BenchmarkFigure2ReuseO(b *testing.B)      { benchWorkload(b, "fig2", "reuseo") }
func BenchmarkFigure2ReuseS(b *testing.B)      { benchWorkload(b, "fig2", "reuses") }

// --- Figure 3: collaborative applications ---

func BenchmarkFigure3BC(b *testing.B)   { benchWorkload(b, "fig3", "bc") }
func BenchmarkFigure3PR(b *testing.B)   { benchWorkload(b, "fig3", "pr") }
func BenchmarkFigure3HSTI(b *testing.B) { benchWorkload(b, "fig3", "hsti") }
func BenchmarkFigure3TRNS(b *testing.B) { benchWorkload(b, "fig3", "trns") }
func BenchmarkFigure3RSCT(b *testing.B) { benchWorkload(b, "fig3", "rsct") }
func BenchmarkFigure3TQH(b *testing.B)  { benchWorkload(b, "fig3", "tqh") }

// --- Tables I-VII (rendering is trivial; benchmarked for completeness of
// the per-experiment index in DESIGN.md) ---

func BenchmarkTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, t := range []string{"I", "II", "III", "IV", "V", "VI", "VII"} {
			if _, err := RenderTable(t); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (host time
// per simulated operation) on the heaviest workload/config pair.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := WorkloadByName("rsct")
	if err != nil {
		b.Fatal(err)
	}
	var ops uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(w, Options{ConfigName: "HMG", Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		ops += res.Ops
	}
	b.ReportMetric(float64(ops)/float64(b.N), "simops/iter")
}

// BenchmarkAblation quantifies DESIGN.md's called-out design choices by
// re-running one representative workload with the relevant dimension
// toggled; see also the ablation benches in the protocol packages.
func BenchmarkAblationTULatency(b *testing.B) {
	// TU lookup latency: paper §III-F argues the TU adds a single cycle;
	// this ablation doubles it and reports the slowdown on the
	// MESI-heavy SMD configuration.
	w, err := WorkloadByName("hsti")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		base := DefaultParams()
		fast, err := Run(w, Options{ConfigName: "SMD", Params: &base, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		slow := DefaultParams()
		slow.TULatencyCycles = 8
		slowRes, err := Run(w, Options{ConfigName: "SMD", Params: &slow, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(slowRes.ExecTime)/float64(fast.ExecTime), "slowdown-8cyc-TU")
	}
}

func BenchmarkAblationDeNovoRegions(b *testing.B) {
	// DeNovo regions (paper §II-C): selective self-invalidation recovers
	// the dense-read reuse that full acquire flashes destroy in ReuseS.
	// Compare the SDD configuration with and without region hints.
	plain, err := WorkloadByName("reuses")
	if err != nil {
		b.Fatal(err)
	}
	regions, err := WorkloadByName("reuses-regions")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		full, err := Run(plain, Options{ConfigName: "SDD", Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		reg, err := Run(regions, Options{ConfigName: "SDD", Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(full.ExecTime)/float64(reg.ExecTime), "regions-speedup")
		b.ReportMetric(float64(full.Traffic.TotalBytes(false))/float64(reg.Traffic.TotalBytes(false)),
			"regions-traffic-saving")
	}
}

func BenchmarkAblationReqSOption2(b *testing.B) {
	// ReqS policy ablation (Table III): option (2) trades away all
	// requestor-side read reuse for zero Shared-state overhead. ReuseS on
	// SMG shows the cost directly.
	w, err := WorkloadByName("reuses")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		def, err := Run(w, Options{ConfigName: "SMG", Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		opt2, err := Run(w, Options{ConfigName: "SMG", Seed: 42, ReqSOption2: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(opt2.ExecTime)/float64(def.ExecTime), "opt2-slowdown")
		b.ReportMetric(float64(opt2.Traffic.TotalBytes(false))/float64(def.Traffic.TotalBytes(false)),
			"opt2-traffic")
	}
}

func BenchmarkAblationWordVsLineOwnership(b *testing.B) {
	// Word-granularity ownership is Spandex's key mechanism; TRNS's packed
	// lock array shows it. Compare SDD (word ownership everywhere) with
	// SMG (line-granularity MESI CPU + write-through GPU).
	w, err := WorkloadByName("trns")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		word, err := Run(w, Options{ConfigName: "SDD", Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		line, err := Run(w, Options{ConfigName: "SMG", Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(line.ExecTime)/float64(word.ExecTime), "line-vs-word-slowdown")
		b.ReportMetric(float64(line.Traffic.TotalBytes(false))/float64(word.Traffic.TotalBytes(false)),
			"line-vs-word-traffic")
	}
}

// BenchmarkHeadlineSweep is the perf-gate workload: the full 54-cell
// Figure 2+3 matrix on a single worker, exactly what
// `spandex-bench -perf` / scripts/bench_snapshot.sh measures and what the
// EXPERIMENTS.md performance-trajectory table tracks.
func BenchmarkHeadlineSweep(b *testing.B) {
	wls := append(append([]string{}, Figure2Workloads()...), Figure3Workloads()...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells := RunMatrix(nil, wls, ConfigNames(), Options{Seed: 42}, MatrixOptions{Workers: 1})
		for _, c := range cells {
			if c.Err != nil {
				b.Fatalf("%s/%s: %v", c.Workload, c.Config, c.Err)
			}
		}
	}
}
