package spandex

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"spandex/internal/proto"
	"spandex/internal/workload"
)

// ConfigNames returns the Table V configuration names in paper order.
func ConfigNames() []string {
	var names []string
	for _, c := range Configurations() {
		names = append(names, c.Name)
	}
	return names
}

// FigureData is the normalized content of one of the paper's result
// figures (Figure 2 for microbenchmarks, Figure 3 for applications):
// execution time and per-class network traffic for each configuration,
// normalized to HMG.
type FigureData struct {
	Title     string
	Workloads []string
	Configs   []string
	// Time[workload][config] is execution time normalized to HMG.
	Time map[string]map[string]float64
	// Traffic[workload][config][class] is traffic normalized to HMG total.
	Traffic map[string]map[string]map[string]float64
	// Raw keeps the underlying cells for inspection.
	Raw []Cell
}

// BuildFigure normalizes a sweep into figure form.
func BuildFigure(title string, workloads []string, cells []Cell) (*FigureData, error) {
	f := &FigureData{
		Title:     title,
		Workloads: workloads,
		Configs:   ConfigNames(),
		Time:      map[string]map[string]float64{},
		Traffic:   map[string]map[string]map[string]float64{},
		Raw:       cells,
	}
	byKey := map[string]Cell{}
	for _, c := range cells {
		if c.Err != nil {
			return nil, fmt.Errorf("%s on %s: %w", c.Workload, c.Config, c.Err)
		}
		byKey[c.Workload+"/"+c.Config] = c
	}
	for _, wn := range workloads {
		base, ok := byKey[wn+"/HMG"]
		if !ok {
			return nil, fmt.Errorf("missing HMG baseline for %s", wn)
		}
		baseTime := float64(base.Result.ExecTime)
		baseTraffic := float64(base.Result.Traffic.TotalBytes(false))
		f.Time[wn] = map[string]float64{}
		f.Traffic[wn] = map[string]map[string]float64{}
		for _, cn := range f.Configs {
			c, ok := byKey[wn+"/"+cn]
			if !ok {
				return nil, fmt.Errorf("missing cell %s/%s", wn, cn)
			}
			f.Time[wn][cn] = float64(c.Result.ExecTime) / baseTime
			classes := map[string]float64{}
			for cl := proto.Class(0); cl < proto.NumClasses; cl++ {
				if cl == proto.ClassMem {
					continue
				}
				classes[cl.String()] = float64(c.Result.Traffic.Bytes[cl]) / baseTraffic
			}
			f.Traffic[wn][cn] = classes
		}
	}
	return f, nil
}

// BestPair reports, for one workload, the best (minimum metric)
// hierarchical and Spandex configurations.
func (f *FigureData) BestPair(wn string, metric func(cfg string) float64) (hbest, sbest float64) {
	hbest, sbest = -1, -1
	for _, cn := range f.Configs {
		v := metric(cn)
		if strings.HasPrefix(cn, "H") {
			if hbest < 0 || v < hbest {
				hbest = v
			}
		} else {
			if sbest < 0 || v < sbest {
				sbest = v
			}
		}
	}
	return
}

// Headline summarizes Sbest-vs-Hbest reductions across a figure's
// workloads (the abstract's headline numbers).
type Headline struct {
	// Per-workload reductions, 0.16 = 16% lower than the best
	// hierarchical configuration.
	TimeReduction    map[string]float64
	TrafficReduction map[string]float64
	AvgTime, MaxTime float64
	AvgTraffic       float64
	MaxTraffic       float64
}

// ComputeHeadline derives the Sbest/Hbest comparison for a figure.
func (f *FigureData) ComputeHeadline() Headline {
	h := Headline{
		TimeReduction:    map[string]float64{},
		TrafficReduction: map[string]float64{},
	}
	for _, wn := range f.Workloads {
		ht, st := f.BestPair(wn, func(cn string) float64 { return f.Time[wn][cn] })
		red := 1 - st/ht
		h.TimeReduction[wn] = red
		h.AvgTime += red
		if red > h.MaxTime {
			h.MaxTime = red
		}
		totTraffic := func(cn string) float64 {
			var s float64
			for _, v := range f.Traffic[wn][cn] {
				s += v
			}
			return s
		}
		hb, sb := f.BestPair(wn, totTraffic)
		tred := 1 - sb/hb
		h.TrafficReduction[wn] = tred
		h.AvgTraffic += tred
		if tred > h.MaxTraffic {
			h.MaxTraffic = tred
		}
	}
	n := float64(len(f.Workloads))
	h.AvgTime /= n
	h.AvgTraffic /= n
	return h
}

// Render formats the figure as text: a normalized execution-time table
// followed by a traffic-breakdown table, matching the paper's Figures 2/3
// presentation.
func (f *FigureData) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%s\n\n", strings.Repeat("=", len(f.Title)))

	fmt.Fprintf(&b, "Execution time (normalized to HMG; lower is better)\n")
	fmt.Fprintf(&b, "%-12s", "workload")
	for _, cn := range f.Configs {
		fmt.Fprintf(&b, "%8s", cn)
	}
	fmt.Fprintln(&b)
	for _, wn := range f.Workloads {
		fmt.Fprintf(&b, "%-12s", wn)
		for _, cn := range f.Configs {
			fmt.Fprintf(&b, "%8.2f", f.Time[wn][cn])
		}
		fmt.Fprintln(&b)
	}

	fmt.Fprintf(&b, "\nNetwork traffic by request class (normalized to HMG total)\n")
	classes := []string{"ReqV", "ReqS", "ReqWT", "ReqO", "ReqWB", "Probe", "Atomic"}
	for _, wn := range f.Workloads {
		fmt.Fprintf(&b, "%s\n", wn)
		fmt.Fprintf(&b, "  %-8s", "class")
		for _, cn := range f.Configs {
			fmt.Fprintf(&b, "%8s", cn)
		}
		fmt.Fprintln(&b)
		for _, cl := range classes {
			allZero := true
			for _, cn := range f.Configs {
				if f.Traffic[wn][cn][cl] > 0.0005 {
					allZero = false
				}
			}
			if allZero {
				continue
			}
			fmt.Fprintf(&b, "  %-8s", cl)
			for _, cn := range f.Configs {
				fmt.Fprintf(&b, "%8.2f", f.Traffic[wn][cn][cl])
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "  %-8s", "total")
		for _, cn := range f.Configs {
			var tot float64
			for _, v := range f.Traffic[wn][cn] {
				tot += v
			}
			fmt.Fprintf(&b, "%8.2f", tot)
		}
		fmt.Fprintln(&b)
	}

	h := f.ComputeHeadline()
	fmt.Fprintf(&b, "\nSbest vs Hbest (best Spandex vs best hierarchical configuration)\n")
	var wls []string
	wls = append(wls, f.Workloads...)
	sort.Strings(wls)
	for _, wn := range f.Workloads {
		fmt.Fprintf(&b, "  %-12s time -%4.0f%%   traffic -%4.0f%%\n",
			wn, h.TimeReduction[wn]*100, h.TrafficReduction[wn]*100)
	}
	fmt.Fprintf(&b, "  %-12s time -%4.0f%% (max %4.0f%%)   traffic -%4.0f%% (max %4.0f%%)\n",
		"AVERAGE", h.AvgTime*100, h.MaxTime*100, h.AvgTraffic*100, h.MaxTraffic*100)
	return b.String()
}

// Figure2Workloads are the synthetic microbenchmarks of Figure 2.
func Figure2Workloads() []string { return workload.Microbenchmarks() }

// Figure3Workloads are the collaborative applications of Figure 3.
func Figure3Workloads() []string { return workload.Applications() }

// RunFigure2 regenerates the paper's Figure 2 (parallel across GOMAXPROCS).
func RunFigure2(opt Options) (*FigureData, error) {
	return RunFigure2Matrix(context.Background(), opt, MatrixOptions{})
}

// RunFigure3 regenerates the paper's Figure 3 (parallel across GOMAXPROCS).
func RunFigure3(opt Options) (*FigureData, error) {
	return RunFigure3Matrix(context.Background(), opt, MatrixOptions{})
}

// RunFigure2Matrix regenerates Figure 2 with explicit scheduling control:
// worker count, cancellation, and per-cell progress.
func RunFigure2Matrix(ctx context.Context, opt Options, mo MatrixOptions) (*FigureData, error) {
	cells := RunMatrix(ctx, Figure2Workloads(), ConfigNames(), opt, mo)
	return BuildFigure("Figure 2: synthetic microbenchmarks", Figure2Workloads(), cells)
}

// RunFigure3Matrix regenerates Figure 3 with explicit scheduling control.
func RunFigure3Matrix(ctx context.Context, opt Options, mo MatrixOptions) (*FigureData, error) {
	cells := RunMatrix(ctx, Figure3Workloads(), ConfigNames(), opt, mo)
	return BuildFigure("Figure 3: collaborative applications", Figure3Workloads(), cells)
}
