package spandex_test

import (
	"runtime"
	"testing"

	spandex "spandex"
	"spandex/internal/config"
)

// legacyPins records the litmus-on-FastParams fingerprint of every Table V
// configuration as measured before the N-device / bank-sharded-LLC /
// switched-NoC refactor. The generalized code paths must reproduce the
// legacy machine bit-for-bit: any change here means the paper's 9×6
// matrix results moved.
var legacyPins = map[string]uint64{
	"HMG": 0x08e228fd41b1dca4,
	"HMD": 0x796664bf9f35750b,
	"SMG": 0xb18ec5ed9c4c982e,
	"SMD": 0x9fc9c4e07ef49742,
	"SDG": 0xc47bb89c0443bca9,
	"SDD": 0x732c53de8f36ec11,
}

func TestLegacyFingerprintsPinned(t *testing.T) {
	w, err := spandex.WorkloadByName("litmus")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range spandex.Configurations() {
		p := spandex.FastParams()
		res, err := spandex.Run(w, spandex.Options{Config: cfg, Params: &p})
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if got, want := res.Fingerprint(), legacyPins[cfg.Name]; got != want {
			t.Errorf("%s: fingerprint %#016x, want pinned %#016x (legacy behaviour changed)",
				cfg.Name, got, want)
		}
	}
}

// scale64Params is the 64-requestor acceptance configuration: 16 CPUs +
// 48 CUs on a 2D mesh over a bank-sharded LLC (8 banks at the default
// one-per-8-requestors ratio).
func scale64Params() config.SystemParams {
	return config.ScaleParams(16, 48, 0)
}

func TestScaleDeterminismSerialVsParallel(t *testing.T) {
	p := scale64Params()
	opt := spandex.Options{Params: &p}
	configs := []string{"SDD", "SMG"}
	workloads := []string{"scalemix"}

	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	var base []spandex.Cell
	for _, workers := range workerCounts {
		cells := spandex.RunMatrix(nil, workloads, configs, opt, spandex.MatrixOptions{Workers: workers})
		for _, c := range cells {
			if c.Err != nil {
				t.Fatalf("workers=%d %s/%s: %v", workers, c.Workload, c.Config, c.Err)
			}
		}
		if base == nil {
			base = cells
			continue
		}
		for i, c := range cells {
			got, want := c.Result.Fingerprint(), base[i].Result.Fingerprint()
			if got != want {
				t.Errorf("workers=%d %s/%s: fingerprint %#x, want %#x (serial)",
					workers, c.Workload, c.Config, got, want)
			}
		}
	}
}

func TestScaleRunValidates(t *testing.T) {
	p := scale64Params()
	w, err := spandex.WorkloadByName("scalemix")
	if err != nil {
		t.Fatal(err)
	}
	res, err := spandex.Run(w, spandex.Options{
		ConfigName: "SDD", Params: &p, Validate: true, CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.ExecTime == 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

// TestBankedFingerprintStableAcrossBankCounts is a regression anchor: the
// same workload on 1, 2 and 4 banks runs to completion with the oracle
// green, and each bank count is individually deterministic.
func TestBankedDeterminismPerBankCount(t *testing.T) {
	w, err := spandex.WorkloadByName("scalemix")
	if err != nil {
		t.Fatal(err)
	}
	for _, banks := range []int{1, 2, 4} {
		p := spandex.FastParams()
		p.LLCBanks = banks
		opt := spandex.Options{ConfigName: "SDD", Params: &p, Validate: true}
		a, err := spandex.Run(w, opt)
		if err != nil {
			t.Fatalf("banks=%d: %v", banks, err)
		}
		b, err := spandex.Run(w, opt)
		if err != nil {
			t.Fatalf("banks=%d rerun: %v", banks, err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("banks=%d: nondeterministic fingerprint", banks)
		}
	}
}

// TestTopologyChangesTimingOnly: switching the NoC model must never
// change the final memory image — only timing (and, through timing,
// barrier-poll operation counts).
func TestTopologyChangesTimingOnly(t *testing.T) {
	w, err := spandex.WorkloadByName("scalemix")
	if err != nil {
		t.Fatal(err)
	}
	var memHash uint64
	for i, topo := range []config.NoCTopology{config.TopoDirect, config.TopoMesh, config.TopoRing} {
		p := spandex.FastParams()
		p.Topology = topo
		res, err := spandex.Run(w, spandex.Options{ConfigName: "SMD", Params: &p, Validate: true})
		if err != nil {
			t.Fatalf("topology %v: %v", topo, err)
		}
		if i == 0 {
			memHash = res.MemHash
			continue
		}
		if res.MemHash != memHash {
			t.Errorf("topology %v: memory image diverged", topo)
		}
	}
}
