package spandex

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"spandex/internal/proto"
	"spandex/internal/stats"
)

// RunSummary is a compact, serializable record of one run's measurements —
// the part of a Result that Fingerprint hashes, plus the identity needed
// to reproduce it. Summaries written to JSONL by one invocation can be
// diffed against a later run (spandex-trace summarize -diff), turning
// "did my change alter behaviour?" into a named-counter answer instead of
// a fingerprint mismatch.
type RunSummary struct {
	Workload    string         `json:"workload"`
	Config      string         `json:"config"`
	Seed        uint64         `json:"seed"`
	Ops         uint64         `json:"ops"`
	MemHash     uint64         `json:"memHash"`
	Fingerprint uint64         `json:"fingerprint"`
	Snapshot    stats.Snapshot `json:"snapshot"`
}

// Summarize captures a Result as a RunSummary. The seed is recorded
// alongside (Result does not carry it) so the summary names the exact
// cell: (workload, config, seed).
func Summarize(res Result, seed uint64) RunSummary {
	return RunSummary{
		Workload:    res.Workload,
		Config:      res.Config,
		Seed:        seed,
		Ops:         res.Ops,
		MemHash:     res.MemHash,
		Fingerprint: res.Fingerprint(),
		Snapshot: stats.Snapshot{
			Traffic:  res.Traffic,
			ExecTime: res.ExecTime,
			Counters: res.Counters,
		},
	}
}

// WriteSummaryJSONL appends each summary as one JSON object per line.
func WriteSummaryJSONL(w io.Writer, sums ...RunSummary) error {
	enc := json.NewEncoder(w)
	for _, s := range sums {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// ReadSummaryJSONL parses a summary JSONL stream, skipping blank lines.
func ReadSummaryJSONL(r io.Reader) ([]RunSummary, error) {
	var out []RunSummary
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var s RunSummary
		if err := json.Unmarshal([]byte(text), &s); err != nil {
			return nil, fmt.Errorf("summary line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MatchSummary picks the summary to diff against: the first entry with the
// same (workload, config, seed), else the same (workload, config), else —
// when the file holds exactly one summary — that one. It returns an error
// naming what was available otherwise, so a mismatched diff never silently
// compares unrelated cells.
func MatchSummary(sums []RunSummary, workload, config string, seed uint64) (RunSummary, error) {
	for _, s := range sums {
		if s.Workload == workload && s.Config == config && s.Seed == seed {
			return s, nil
		}
	}
	for _, s := range sums {
		if s.Workload == workload && s.Config == config {
			return s, nil
		}
	}
	if len(sums) == 1 {
		return sums[0], nil
	}
	var have []string
	for _, s := range sums {
		have = append(have, fmt.Sprintf("%s/%s seed %d", s.Workload, s.Config, s.Seed))
	}
	return RunSummary{}, fmt.Errorf("no summary for %s/%s among %d entries (%s)",
		workload, config, len(sums), strings.Join(have, ", "))
}

// minSnapshot returns the elementwise minimum of two snapshots. Because
// stats.Snapshot.Diff requires prev <= s in every component (counters are
// monotone within one run, but two independent runs are ordered in
// neither direction), diffing both operands against their shared floor
// yields two valid Diff calls whose results read side by side.
func minSnapshot(a, b stats.Snapshot) stats.Snapshot {
	m := stats.Snapshot{ExecTime: a.ExecTime, Counters: make(map[string]uint64)}
	if b.ExecTime < m.ExecTime {
		m.ExecTime = b.ExecTime
	}
	for c := range m.Traffic.Bytes {
		m.Traffic.Bytes[c] = minU64(a.Traffic.Bytes[c], b.Traffic.Bytes[c])
		m.Traffic.Messages[c] = minU64(a.Traffic.Messages[c], b.Traffic.Messages[c])
	}
	for k, av := range a.Counters {
		if bv, ok := b.Counters[k]; ok {
			m.Counters[k] = minU64(av, bv)
		}
		// A counter present in only one run has floor 0: omitted here, so
		// Diff reports its full value on the side that has it.
	}
	return m
}

func minU64(a, b uint64) uint64 {
	if b < a {
		return b
	}
	return a
}

// DiffSummaries renders a measurement-by-measurement comparison of two
// runs, base first. The headline is stats.Snapshot.FirstDiff — the first
// divergent measurement in deterministic order — followed by every
// differing quantity with both values and the signed delta (other - base),
// computed via two stats.Snapshot.Diff calls against the runs' elementwise
// floor. Identical measurements collapse to a one-line confirmation.
func DiffSummaries(base, other RunSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "summary diff: %s/%s seed %d  vs  %s/%s seed %d\n",
		base.Workload, base.Config, base.Seed, other.Workload, other.Config, other.Seed)

	first := base.Snapshot.FirstDiff(other.Snapshot)
	if first == "" && base.Ops == other.Ops && base.MemHash == other.MemHash {
		fmt.Fprintf(&b, "  measurements are bit-identical (fingerprint %#016x)\n", base.Fingerprint)
		return b.String()
	}
	if first != "" {
		fmt.Fprintf(&b, "  first divergence: %s\n", first)
	}

	floor := minSnapshot(base.Snapshot, other.Snapshot)
	da := base.Snapshot.Diff(floor)
	db := other.Snapshot.Diff(floor)

	row := func(name string, av, bv uint64) {
		if av == bv {
			return
		}
		delta := int64(bv) - int64(av)
		fmt.Fprintf(&b, "  %-28s %14d %14d %+12d\n", name, av, bv, delta)
	}
	fmt.Fprintf(&b, "  %-28s %14s %14s %12s\n", "measurement", "base", "other", "delta")
	row("exec time (ticks)", uint64(base.Snapshot.ExecTime), uint64(other.Snapshot.ExecTime))
	for c := proto.Class(0); c < proto.NumClasses; c++ {
		// da/db hold the deltas above the shared floor; rendering
		// floor+delta restores the absolute values without re-deriving them
		// outside Diff.
		row(fmt.Sprintf("%s bytes", c),
			floor.Traffic.Bytes[c]+da.Traffic.Bytes[c],
			floor.Traffic.Bytes[c]+db.Traffic.Bytes[c])
		row(fmt.Sprintf("%s msgs", c),
			floor.Traffic.Messages[c]+da.Traffic.Messages[c],
			floor.Traffic.Messages[c]+db.Traffic.Messages[c])
	}
	names := make(map[string]bool, len(da.Counters)+len(db.Counters))
	for k := range da.Counters {
		names[k] = true
	}
	for k := range db.Counters {
		names[k] = true
	}
	sorted := make([]string, 0, len(names))
	for k := range names {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		row(k, floor.Counters[k]+da.Counters[k], floor.Counters[k]+db.Counters[k])
	}
	row("ops", base.Ops, other.Ops)
	if base.MemHash != other.MemHash {
		fmt.Fprintf(&b, "  %-28s %#14x %#14x\n", "memHash", base.MemHash, other.MemHash)
	}
	return b.String()
}
