module spandex

go 1.23
