module spandex

go 1.22
